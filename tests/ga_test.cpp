#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "circuitgen/circuitgen.h"
#include "fault/fault.h"
#include "fsim/fault_sim.h"
#include "ga/ga.h"
#include "gatest/config.h"
#include "gatest/fitness.h"
#include "util/rng.h"

namespace gatest {
namespace {

double ones_count(const std::vector<std::uint8_t>& genes) {
  return static_cast<double>(
      std::count(genes.begin(), genes.end(), std::uint8_t{1}));
}

GaConfig basic_config() {
  GaConfig cfg;
  cfg.population_size = 16;
  cfg.num_generations = 8;
  cfg.mutation_prob = 1.0 / 16.0;
  return cfg;
}

TEST(Ga, ToStringCoversAllSchemes) {
  EXPECT_EQ(to_string(SelectionScheme::RouletteWheel), "roulette");
  EXPECT_EQ(to_string(SelectionScheme::StochasticUniversal),
            "stochastic-universal");
  EXPECT_EQ(to_string(SelectionScheme::TournamentNoReplacement),
            "tournament-no-repl");
  EXPECT_EQ(to_string(SelectionScheme::TournamentWithReplacement),
            "tournament-repl");
  EXPECT_EQ(to_string(CrossoverScheme::OnePoint), "1-point");
  EXPECT_EQ(to_string(CrossoverScheme::TwoPoint), "2-point");
  EXPECT_EQ(to_string(CrossoverScheme::Uniform), "uniform");
  EXPECT_EQ(to_string(Coding::Binary), "binary");
  EXPECT_EQ(to_string(Coding::NonBinary), "nonbinary");
}

TEST(Ga, RejectsBadConfigs) {
  Rng rng(1);
  GaConfig cfg = basic_config();
  cfg.population_size = 1;
  EXPECT_THROW(GeneticAlgorithm(cfg, 8, rng), std::runtime_error);
  cfg = basic_config();
  EXPECT_THROW(GeneticAlgorithm(cfg, 0, rng), std::runtime_error);
  cfg.coding = Coding::NonBinary;
  cfg.gene_block = 3;
  EXPECT_THROW(GeneticAlgorithm(cfg, 8, rng), std::runtime_error);
  cfg = basic_config();
  cfg.generation_gap = 0.0;
  EXPECT_THROW(GeneticAlgorithm(cfg, 8, rng), std::runtime_error);
}

TEST(Ga, RandomizePopulationFillsAllBits) {
  Rng rng(2);
  GeneticAlgorithm ga(basic_config(), 64, rng);
  ga.randomize_population();
  bool any_one = false, any_zero = false;
  for (const Individual& ind : ga.population()) {
    EXPECT_EQ(ind.genes.size(), 64u);
    EXPECT_FALSE(ind.evaluated);
    for (std::uint8_t g : ind.genes) (g ? any_one : any_zero) = true;
  }
  EXPECT_TRUE(any_one);
  EXPECT_TRUE(any_zero);
}

TEST(Ga, EvaluateCachesAndCounts) {
  Rng rng(3);
  GeneticAlgorithm ga(basic_config(), 16, rng);
  ga.randomize_population();
  const std::size_t n1 = ga.evaluate(ones_count);
  EXPECT_EQ(n1, 16u);
  const std::size_t n2 = ga.evaluate(ones_count);
  EXPECT_EQ(n2, 0u);  // all cached
  EXPECT_EQ(ga.evaluations(), 16u);
}

TEST(Ga, BestTracksMaximum) {
  Rng rng(4);
  GeneticAlgorithm ga(basic_config(), 16, rng);
  ga.randomize_population();
  ga.evaluate(ones_count);
  double max_fit = 0;
  for (const Individual& ind : ga.population())
    max_fit = std::max(max_fit, ind.fitness);
  EXPECT_EQ(ga.best().fitness, max_fit);
}

TEST(Ga, RunImprovesOneMax) {
  // OneMax: the GA should do much better than a random individual
  // (expected 32 ones out of 64).
  Rng rng(5);
  GaConfig cfg = basic_config();
  cfg.population_size = 32;
  cfg.num_generations = 20;
  GeneticAlgorithm ga(cfg, 64, rng);
  const Individual& best = ga.run(ones_count);
  EXPECT_GE(best.fitness, 45.0);
}

TEST(Ga, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    GeneticAlgorithm ga(basic_config(), 32, rng);
    ga.run(ones_count);
    return ga.best().genes;
  };
  EXPECT_EQ(run_once(99), run_once(99));
  EXPECT_NE(run_once(99), run_once(100));
}

TEST(Ga, SetIndividualSeedsPopulation) {
  Rng rng(6);
  GeneticAlgorithm ga(basic_config(), 8, rng);
  ga.randomize_population();
  std::vector<std::uint8_t> all_ones(8, 1);
  ga.set_individual(0, all_ones);
  ga.evaluate(ones_count);
  EXPECT_EQ(ga.best().fitness, 8.0);
  EXPECT_THROW(ga.set_individual(99, all_ones), std::runtime_error);
  EXPECT_THROW(ga.set_individual(0, std::vector<std::uint8_t>(3, 0)),
               std::runtime_error);
}

TEST(Ga, BatchEvaluateMatchesSerial) {
  auto run_with = [](bool batch) {
    Rng rng(77);
    GeneticAlgorithm ga(basic_config(), 32, rng);
    if (batch) {
      ga.run([](const std::vector<const std::vector<std::uint8_t>*>& genes,
                std::vector<double>& out) {
        for (std::size_t i = 0; i < genes.size(); ++i)
          out[i] = ones_count(*genes[i]);
      });
    } else {
      ga.run(ones_count);
    }
    return ga.best().genes;
  };
  EXPECT_EQ(run_with(true), run_with(false));
}

TEST(Ga, BatchEvaluateCountsComputations) {
  Rng rng(78);
  GeneticAlgorithm ga(basic_config(), 16, rng);
  ga.randomize_population();
  const std::size_t n = ga.evaluate(
      [](const std::vector<const std::vector<std::uint8_t>*>& genes,
         std::vector<double>& out) {
        for (std::size_t i = 0; i < genes.size(); ++i)
          out[i] = ones_count(*genes[i]);
      });
  EXPECT_EQ(n, 16u);
  EXPECT_EQ(ga.evaluations(), 16u);
}

TEST(Ga, BatchEvaluateHandsOverDuplicateGenomes) {
  // Duplicate individuals in one generation each occupy a batch slot (the
  // GA deduplicates nothing itself — that is the fitness cache's job), and
  // the per-generation eval counter reflects every slot.
  Rng rng(79);
  GeneticAlgorithm ga(basic_config(), 8, rng);
  ga.randomize_population();
  const std::vector<std::uint8_t> dup(8, 1);
  for (std::size_t slot = 0; slot < 4; ++slot) ga.set_individual(slot, dup);
  std::size_t batch_slots = 0, dup_slots = 0;
  const std::size_t n = ga.evaluate(
      [&](const std::vector<const std::vector<std::uint8_t>*>& genes,
          std::vector<double>& out) {
        batch_slots = genes.size();
        for (std::size_t i = 0; i < genes.size(); ++i) {
          if (*genes[i] == dup) ++dup_slots;
          out[i] = ones_count(*genes[i]);
        }
      });
  EXPECT_EQ(n, 16u);
  EXPECT_EQ(batch_slots, 16u);
  EXPECT_GE(dup_slots, 4u);
  EXPECT_EQ(ga.evaluations(), 16u);
}

TEST(Ga, DuplicateGenomesSimulateOncePerUniqueWithCache) {
  // The GaTestGenerator wiring in miniature: a population seeded with
  // duplicates, scored through a cache-enabled FitnessEvaluator.  Logical
  // evaluations count every individual (budget determinism), but the fault
  // simulator runs once per unique genome.
  const Circuit c = make_s27();
  FaultList fl(c);
  SequentialFaultSimulator sim(c, fl);
  TestGenConfig tcfg;
  FitnessEvaluator fit(sim, tcfg);
  fit.set_cache(true);

  GaConfig cfg = basic_config();
  Rng rng(80);
  GeneticAlgorithm ga(cfg, c.num_inputs(), rng);
  ga.randomize_population();
  const std::vector<std::uint8_t> dup = {1, 0, 1, 0};
  for (std::size_t slot = 0; slot < 6; ++slot) ga.set_individual(slot, dup);

  std::set<std::vector<std::uint8_t>> unique;
  for (const Individual& ind : ga.population()) unique.insert(ind.genes);

  const std::size_t n = ga.evaluate(
      [&](const std::vector<const std::vector<std::uint8_t>*>& genes,
          std::vector<double>& out) {
        for (std::size_t i = 0; i < genes.size(); ++i)
          out[i] = fit.vector_fitness(decode_vector(*genes[i], c.num_inputs()),
                                      Phase::DetectFaults);
      });
  EXPECT_EQ(n, 16u);
  EXPECT_EQ(fit.evaluations(), 16u);           // every slot counted
  EXPECT_EQ(fit.sim_evaluations(), unique.size());  // one sim per unique
  EXPECT_EQ(fit.cache_stats().misses, unique.size());
  EXPECT_EQ(fit.cache_stats().hits, 16u - unique.size());

  // Identical fitness for identical genomes, and cached == computed.
  FitnessEvaluator nocache(sim, tcfg);
  for (const Individual& ind : ga.population())
    EXPECT_EQ(ind.fitness,
              nocache.vector_fitness(decode_vector(ind.genes, c.num_inputs()),
                                     Phase::DetectFaults))
        << "cached fitness diverged from direct evaluation";
}

TEST(Ga, ObserverReportsPerGenerationEvalCounts) {
  // The telemetry observer's per-generation `evaluations` must count only
  // the individuals evaluated in that generation (survivors of an
  // overlapping population stay cached), and the per-generation counts must
  // sum to the GA's lifetime total.
  GaConfig cfg = basic_config();
  cfg.generation_gap = 0.5;  // half the population survives each generation
  Rng rng(81);
  GeneticAlgorithm ga(cfg, 16, rng);
  std::vector<std::size_t> per_gen;
  ga.set_observer([&](const GaGenerationInfo& g) {
    ASSERT_EQ(g.generation, per_gen.size());
    per_gen.push_back(g.evaluations);
  });
  ga.run([](const std::vector<const std::vector<std::uint8_t>*>& genes,
            std::vector<double>& out) {
    for (std::size_t i = 0; i < genes.size(); ++i)
      out[i] = ones_count(*genes[i]);
  });
  ASSERT_EQ(per_gen.size(), cfg.num_generations);
  EXPECT_EQ(per_gen[0], cfg.population_size);  // fresh population
  const std::size_t replaced = static_cast<std::size_t>(
      cfg.generation_gap * cfg.population_size);
  for (std::size_t g = 1; g < per_gen.size(); ++g)
    EXPECT_LE(per_gen[g], replaced) << "generation " << g;
  EXPECT_EQ(std::accumulate(per_gen.begin(), per_gen.end(), std::size_t{0}),
            ga.evaluations());
}

TEST(Ga, StopCheckEndsRunAfterCurrentGeneration) {
  Rng rng(11);
  GeneticAlgorithm ga(basic_config(), 24, rng);
  ga.set_stop_check([] { return true; });
  ga.run([](const std::vector<std::uint8_t>& g) { return ones_count(g); });
  // Stop requested after the first generation's evaluation: exactly one
  // population was scored and the run flags the early exit.
  EXPECT_EQ(ga.evaluations(), basic_config().population_size);
  EXPECT_TRUE(ga.stopped_early());
}

TEST(Ga, BatchRunHonorsStopCheck) {
  Rng rng(11);
  GeneticAlgorithm ga(basic_config(), 24, rng);
  unsigned calls = 0;
  ga.set_stop_check([&calls] { return ++calls >= 2; });
  ga.run([](const std::vector<const std::vector<std::uint8_t>*>& batch,
            std::vector<double>& fitness) {
    for (std::size_t i = 0; i < batch.size(); ++i)
      fitness[i] = ones_count(*batch[i]);
  });
  EXPECT_TRUE(ga.stopped_early());
  EXPECT_LT(ga.evaluations(),
            static_cast<std::size_t>(basic_config().population_size) *
                basic_config().num_generations);
}

TEST(Ga, StopCheckNeverFiringLeavesRunComplete) {
  Rng rng(11);
  GeneticAlgorithm ga(basic_config(), 24, rng);
  ga.set_stop_check([] { return false; });
  ga.run([](const std::vector<std::uint8_t>& g) { return ones_count(g); });
  EXPECT_FALSE(ga.stopped_early());
}

TEST(Ga, NextGenerationRequiresEvaluation) {
  Rng rng(7);
  GeneticAlgorithm ga(basic_config(), 8, rng);
  ga.randomize_population();
  EXPECT_THROW(ga.next_generation(), std::runtime_error);
}

// ---- selection pressure ------------------------------------------------------

class SelectionSchemeTest
    : public ::testing::TestWithParam<SelectionScheme> {};

TEST_P(SelectionSchemeTest, FitterIndividualsReproduceMore) {
  Rng rng(11);
  GaConfig cfg = basic_config();
  cfg.selection = GetParam();
  cfg.population_size = 32;
  cfg.mutation_prob = 0.0;  // isolate selection
  cfg.crossover_prob = 0.0;
  GeneticAlgorithm ga(cfg, 16, rng);
  ga.randomize_population();
  ga.evaluate(ones_count);
  const double mean_before =
      std::accumulate(ga.population().begin(), ga.population().end(), 0.0,
                      [](double acc, const Individual& i) {
                        return acc + i.fitness;
                      }) /
      32.0;
  ga.next_generation();
  ga.evaluate(ones_count);
  const double mean_after =
      std::accumulate(ga.population().begin(), ga.population().end(), 0.0,
                      [](double acc, const Individual& i) {
                        return acc + i.fitness;
                      }) /
      32.0;
  EXPECT_GT(mean_after, mean_before - 0.5);  // no collapse
  EXPECT_GE(mean_after, mean_before);        // selection raises the mean
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SelectionSchemeTest,
    ::testing::Values(SelectionScheme::RouletteWheel,
                      SelectionScheme::StochasticUniversal,
                      SelectionScheme::TournamentNoReplacement,
                      SelectionScheme::TournamentWithReplacement));

TEST(Ga, StochasticUniversalGivesProportionalCopies) {
  // SUS's defining property: an individual holding half the total fitness
  // receives half the selections, +/- 1 (far less noise than roulette).
  Rng rng(61);
  GaConfig cfg = basic_config();
  cfg.selection = SelectionScheme::StochasticUniversal;
  cfg.population_size = 8;
  cfg.mutation_prob = 0.0;
  cfg.crossover_prob = 0.0;
  GeneticAlgorithm ga(cfg, 8, rng);
  // One individual with fitness 8 (all ones), seven with fitness ~1.
  std::vector<std::uint8_t> strong(8, 1);
  std::vector<std::uint8_t> weak(8, 0);
  weak[0] = 1;
  ga.set_individual(0, strong);
  for (std::size_t i = 1; i < 8; ++i) ga.set_individual(i, weak);
  ga.evaluate(ones_count);
  // Total fitness 8 + 7 = 15; strong holds 8/15 of the wheel; over 8
  // markers it gets floor/ceil of 8 * 8/15 = 4.27 -> 4 or 5 copies.
  ga.next_generation();
  ga.evaluate(ones_count);
  int strong_copies = 0;
  for (const Individual& ind : ga.population())
    if (ind.genes == strong) ++strong_copies;
  EXPECT_GE(strong_copies, 4);
  EXPECT_LE(strong_copies, 5);
}

TEST(Ga, RouletteFavorsFitterOverManyTrials) {
  Rng rng(67);
  GaConfig cfg = basic_config();
  cfg.selection = SelectionScheme::RouletteWheel;
  cfg.population_size = 4;
  cfg.mutation_prob = 0.0;
  cfg.crossover_prob = 0.0;
  int strong_total = 0, trials = 0;
  for (int round = 0; round < 30; ++round) {
    GeneticAlgorithm ga(cfg, 4, rng);
    std::vector<std::uint8_t> strong(4, 1);
    ga.set_individual(0, strong);
    for (std::size_t i = 1; i < 4; ++i)
      ga.set_individual(i, std::vector<std::uint8_t>(4, 0));
    // Give the weak ones a nonzero share via one bit.
    ga.evaluate([](const std::vector<std::uint8_t>& g) {
      return 1.0 + 3.0 * ones_count(g);
    });
    ga.next_generation();
    ga.evaluate(ones_count);
    for (const Individual& ind : ga.population()) {
      strong_total += ind.genes == strong;
      ++trials;
    }
  }
  // Strong holds 13/16 of the wheel; expect clearly more than half of all
  // selections across rounds.
  EXPECT_GT(strong_total, trials / 2);
}

TEST(Ga, ZeroFitnessPopulationStillSelects) {
  Rng rng(13);
  GaConfig cfg = basic_config();
  cfg.selection = SelectionScheme::RouletteWheel;
  GeneticAlgorithm ga(cfg, 8, rng);
  ga.randomize_population();
  ga.evaluate([](const std::vector<std::uint8_t>&) { return 0.0; });
  EXPECT_NO_THROW(ga.next_generation());
}

// ---- crossover structure -------------------------------------------------------

TEST(Ga, OnePointCrossoverPreservesPrefixSuffix) {
  Rng rng(17);
  GaConfig cfg = basic_config();
  cfg.crossover = CrossoverScheme::OnePoint;
  cfg.mutation_prob = 0.0;
  cfg.population_size = 2;
  GeneticAlgorithm ga(cfg, 16, rng);
  ga.set_individual(0, std::vector<std::uint8_t>(16, 0));
  ga.set_individual(1, std::vector<std::uint8_t>(16, 1));
  ga.evaluate(ones_count);
  ga.next_generation();
  for (const Individual& child : ga.population()) {
    // Child must be 0...01...1 or 1...10...0 (exactly one switch point).
    int switches = 0;
    for (std::size_t i = 1; i < child.genes.size(); ++i)
      if (child.genes[i] != child.genes[i - 1]) ++switches;
    EXPECT_LE(switches, 1);
  }
}

TEST(Ga, TwoPointCrossoverHasAtMostTwoSwitches) {
  Rng rng(19);
  GaConfig cfg = basic_config();
  cfg.crossover = CrossoverScheme::TwoPoint;
  cfg.mutation_prob = 0.0;
  cfg.population_size = 2;
  GeneticAlgorithm ga(cfg, 16, rng);
  ga.set_individual(0, std::vector<std::uint8_t>(16, 0));
  ga.set_individual(1, std::vector<std::uint8_t>(16, 1));
  ga.evaluate(ones_count);
  ga.next_generation();
  for (const Individual& child : ga.population()) {
    int switches = 0;
    for (std::size_t i = 1; i < child.genes.size(); ++i)
      if (child.genes[i] != child.genes[i - 1]) ++switches;
    EXPECT_LE(switches, 2);
  }
}

TEST(Ga, CrossoverChildrenDrawBitsFromParents) {
  // With mutation off, every child bit must equal one of the parents' bits
  // at that position, whatever the crossover scheme.
  for (CrossoverScheme scheme :
       {CrossoverScheme::OnePoint, CrossoverScheme::TwoPoint,
        CrossoverScheme::Uniform}) {
    Rng rng(23);
    GaConfig cfg = basic_config();
    cfg.crossover = scheme;
    cfg.mutation_prob = 0.0;
    cfg.population_size = 2;
    GeneticAlgorithm ga(cfg, 32, rng);
    Rng gen(29);
    std::vector<std::uint8_t> p0(32), p1(32);
    for (auto& b : p0) b = static_cast<std::uint8_t>(gen.coin());
    for (auto& b : p1) b = static_cast<std::uint8_t>(gen.coin());
    ga.set_individual(0, p0);
    ga.set_individual(1, p1);
    ga.evaluate(ones_count);
    ga.next_generation();
    for (const Individual& child : ga.population()) {
      for (std::size_t i = 0; i < 32; ++i) {
        EXPECT_TRUE(child.genes[i] == p0[i] || child.genes[i] == p1[i])
            << "scheme " << to_string(scheme) << " pos " << i;
      }
    }
  }
}

TEST(Ga, NonBinaryCrossoverCutsAtVectorBoundaries) {
  // 4 characters of 8 bits. Parents are 0x00.. and 0xFF..: children must be
  // whole-character mixtures — every 8-bit block all-0 or all-1.
  Rng rng(31);
  GaConfig cfg = basic_config();
  cfg.coding = Coding::NonBinary;
  cfg.gene_block = 8;
  cfg.mutation_prob = 0.0;
  cfg.population_size = 2;
  for (CrossoverScheme scheme :
       {CrossoverScheme::OnePoint, CrossoverScheme::TwoPoint,
        CrossoverScheme::Uniform}) {
    cfg.crossover = scheme;
    GeneticAlgorithm ga(cfg, 32, rng);
    ga.set_individual(0, std::vector<std::uint8_t>(32, 0));
    ga.set_individual(1, std::vector<std::uint8_t>(32, 1));
    ga.evaluate(ones_count);
    ga.next_generation();
    for (const Individual& child : ga.population()) {
      for (std::size_t blk = 0; blk < 4; ++blk) {
        int sum = 0;
        for (std::size_t i = blk * 8; i < (blk + 1) * 8; ++i)
          sum += child.genes[i];
        EXPECT_TRUE(sum == 0 || sum == 8)
            << "scheme " << to_string(scheme) << " block " << blk;
      }
    }
  }
}

// ---- mutation -----------------------------------------------------------------

TEST(Ga, MutationRateMatchesExpectation) {
  Rng rng(37);
  GaConfig cfg = basic_config();
  cfg.population_size = 64;
  cfg.mutation_prob = 0.25;
  cfg.crossover_prob = 0.0;
  cfg.selection = SelectionScheme::TournamentWithReplacement;
  GeneticAlgorithm ga(cfg, 64, rng);
  // All-zero population; after one generation count mutated bits.
  for (std::size_t i = 0; i < 64; ++i)
    ga.set_individual(i, std::vector<std::uint8_t>(64, 0));
  ga.evaluate([](const std::vector<std::uint8_t>&) { return 1.0; });
  ga.next_generation();
  std::size_t ones = 0;
  for (const Individual& ind : ga.population())
    ones += static_cast<std::size_t>(ones_count(ind.genes));
  const double rate = static_cast<double>(ones) / (64.0 * 64.0);
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(Ga, NonBinaryMutationRegeneratesWholeVector) {
  Rng rng(41);
  GaConfig cfg = basic_config();
  cfg.coding = Coding::NonBinary;
  cfg.gene_block = 16;
  cfg.mutation_prob = 1.0;  // every character regenerated
  cfg.crossover_prob = 0.0;
  cfg.population_size = 2;
  GeneticAlgorithm ga(cfg, 32, rng);
  ga.set_individual(0, std::vector<std::uint8_t>(32, 0));
  ga.set_individual(1, std::vector<std::uint8_t>(32, 0));
  ga.evaluate(ones_count);
  ga.next_generation();
  // With p=1 every 16-bit character is uniform-random: all-zero blocks are
  // ~2^-16 likely, so expect some ones in each child.
  for (const Individual& child : ga.population())
    EXPECT_GT(ones_count(child.genes), 0.0);
}

// ---- overlapping populations ----------------------------------------------------

TEST(Ga, GenerationGapKeepsBestIndividuals) {
  Rng rng(43);
  GaConfig cfg = basic_config();
  cfg.population_size = 16;
  cfg.generation_gap = 0.25;  // replace only the 4 worst
  cfg.mutation_prob = 0.0;
  GeneticAlgorithm ga(cfg, 16, rng);
  ga.randomize_population();
  std::vector<std::uint8_t> all_ones(16, 1);
  ga.set_individual(3, all_ones);
  ga.evaluate(ones_count);
  ga.next_generation();
  // The elite all-ones chromosome must survive the replacement.
  bool survived = false;
  for (const Individual& ind : ga.population())
    if (ind.genes == all_ones) survived = true;
  EXPECT_TRUE(survived);
}

TEST(Ga, GenerationGapReplacesExactCount) {
  Rng rng(47);
  GaConfig cfg = basic_config();
  cfg.population_size = 16;
  cfg.generation_gap = 0.5;
  cfg.mutation_prob = 0.0;
  cfg.crossover_prob = 0.0;
  GeneticAlgorithm ga(cfg, 8, rng);
  ga.randomize_population();
  ga.evaluate(ones_count);
  // Evaluating after the generation shows exactly 8 new (unevaluated).
  ga.next_generation();
  std::size_t unevaluated = 0;
  for (const Individual& ind : ga.population())
    if (!ind.evaluated) ++unevaluated;
  EXPECT_EQ(unevaluated, 8u);
}

TEST(Ga, ElitismPreservesBestInFullReplacement) {
  Rng rng(59);
  GaConfig cfg = basic_config();
  cfg.population_size = 8;
  cfg.elitism = true;
  cfg.mutation_prob = 0.5;  // heavy mutation would normally lose the elite
  GeneticAlgorithm ga(cfg, 16, rng);
  ga.randomize_population();
  std::vector<std::uint8_t> all_ones(16, 1);
  ga.set_individual(2, all_ones);
  ga.evaluate(ones_count);
  for (int gen = 0; gen < 5; ++gen) {
    ga.next_generation();
    ga.evaluate(ones_count);
    double max_fit = 0;
    for (const Individual& ind : ga.population())
      max_fit = std::max(max_fit, ind.fitness);
    EXPECT_EQ(max_fit, 16.0) << "elite lost in generation " << gen;
  }
}

TEST(Ga, FullGapReplacesWholePopulation) {
  Rng rng(53);
  GaConfig cfg = basic_config();
  cfg.population_size = 8;
  GeneticAlgorithm ga(cfg, 8, rng);
  ga.randomize_population();
  ga.evaluate(ones_count);
  ga.next_generation();
  std::size_t unevaluated = 0;
  for (const Individual& ind : ga.population())
    if (!ind.evaluated) ++unevaluated;
  EXPECT_EQ(unevaluated, 8u);
}

}  // namespace
}  // namespace gatest
