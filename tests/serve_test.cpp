// gatest_serve tests: protocol parsing/validation (no sockets), response
// writing, scheduler determinism under time slicing, durability (job
// journal, crash/restart recovery, torture cycles under fault injection),
// overload protection (bounded queue, quotas, watcher shedding), client
// backoff, and socket-level end-to-end passes through the server.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "circuitgen/circuitgen.h"
#include "fault/fault.h"
#include "fsim/backend.h"
#include "gatest/test_generator.h"
#include "serve/client.h"
#include "serve/http.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "sim/logic.h"
#include "telemetry/json.h"
#include "util/fault_inject.h"
#include "util/net.h"

namespace gatest::serve {
namespace {

// ---- request parsing --------------------------------------------------------

ProtocolError parse_error(const std::string& line) {
  Request req;
  ProtocolError err;
  EXPECT_FALSE(parse_request(line, req, err)) << line;
  return err;
}

TEST(Protocol, RejectsMalformedJson) {
  EXPECT_EQ(parse_error("{not json").code, "bad-json");
  EXPECT_EQ(parse_error("\"cmd\"").code, "not-object");
  EXPECT_EQ(parse_error("[1,2]").code, "not-object");
  EXPECT_EQ(parse_error("{}").code, "missing-field");
  EXPECT_EQ(parse_error("{\"cmd\":42}").code, "bad-field");
  EXPECT_EQ(parse_error("{\"cmd\":\"frobnicate\"}").code, "unknown-command");
}

TEST(Protocol, RejectsOversizedFrame) {
  std::string line = "{\"cmd\":\"status\",\"pad\":\"";
  line.append(kMaxRequestBytes, 'x');
  line += "\"}";
  EXPECT_EQ(parse_error(line).code, "oversized");
}

TEST(Protocol, RequiresIdWhereItMatters) {
  EXPECT_EQ(parse_error("{\"cmd\":\"cancel\"}").code, "missing-field");
  EXPECT_EQ(parse_error("{\"cmd\":\"result\"}").code, "missing-field");
  EXPECT_EQ(parse_error("{\"cmd\":\"cancel\",\"id\":-1}").code, "bad-field");
  EXPECT_EQ(parse_error("{\"cmd\":\"cancel\",\"id\":1.5}").code, "bad-field");

  Request req;
  ProtocolError err;
  // status and watch work with or without an id.
  ASSERT_TRUE(parse_request("{\"cmd\":\"status\"}", req, err));
  EXPECT_FALSE(req.has_id);
  ASSERT_TRUE(parse_request("{\"cmd\":\"status\",\"id\":7}", req, err));
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(req.id, 7u);
}

TEST(Protocol, SubmitNeedsExactlyOneCircuitSource) {
  EXPECT_EQ(parse_error("{\"cmd\":\"submit\"}").code, "missing-field");
  EXPECT_EQ(
      parse_error(
          "{\"cmd\":\"submit\",\"profile\":\"s27\",\"bench\":\"INPUT(a)\"}")
          .code,
      "missing-field");
  EXPECT_EQ(parse_error("{\"cmd\":\"submit\",\"profile\":\"\"}").code,
            "bad-field");
  EXPECT_EQ(parse_error("{\"cmd\":\"submit\",\"profile\":17}").code,
            "bad-field");
}

TEST(Protocol, SubmitMapsConfigAndBudget) {
  Request req;
  ProtocolError err;
  ASSERT_TRUE(parse_request(
      "{\"cmd\":\"submit\",\"profile\":\"s298\",\"name\":\"n1\","
      "\"config\":{\"seed\":42,\"gap\":0.5,\"selection\":\"tournament\","
      "\"crossover\":\"uniform\",\"coding\":\"nonbinary\","
      "\"fitness_cache\":true},"
      "\"budget\":{\"max_evals\":500,\"max_vectors\":9}}",
      req, err))
      << err.code << ": " << err.message;
  EXPECT_EQ(req.cmd, Command::Submit);
  EXPECT_EQ(req.submit.profile, "s298");
  EXPECT_EQ(req.submit.name, "n1");
  EXPECT_EQ(req.submit.config.seed, 42u);
  EXPECT_DOUBLE_EQ(req.submit.config.generation_gap, 0.5);
  EXPECT_EQ(req.submit.config.selection,
            SelectionScheme::TournamentNoReplacement);
  EXPECT_EQ(req.submit.config.crossover, CrossoverScheme::Uniform);
  EXPECT_EQ(req.submit.config.sequence_coding, Coding::NonBinary);
  EXPECT_TRUE(req.submit.config.fitness_cache);
  EXPECT_EQ(req.submit.budget.max_evaluations, 500u);
  EXPECT_EQ(req.submit.budget.max_vectors, 9u);
}

TEST(Protocol, SubmitRejectsBadKnobs) {
  const std::string prefix = "{\"cmd\":\"submit\",\"profile\":\"s27\",";
  EXPECT_EQ(parse_error(prefix + "\"config\":{\"speling\":1}}").code,
            "bad-field");
  EXPECT_EQ(parse_error(prefix + "\"config\":{\"gap\":0}}").code, "bad-field");
  EXPECT_EQ(parse_error(prefix + "\"config\":{\"gap\":1.5}}").code,
            "bad-field");
  EXPECT_EQ(parse_error(prefix + "\"config\":{\"threads\":0}}").code,
            "bad-field");
  EXPECT_EQ(parse_error(prefix + "\"config\":{\"selection\":\"best\"}}").code,
            "bad-field");
  EXPECT_EQ(parse_error(prefix + "\"budget\":{\"max_evals\":0}}").code,
            "bad-field");
  EXPECT_EQ(parse_error(prefix + "\"budget\":{\"fuel\":3}}").code,
            "bad-field");
  // Wall-clock budgets are rejected for served jobs: slice segments restart
  // the clock, so the budget would not be cumulative.
  EXPECT_EQ(parse_error(prefix + "\"budget\":{\"time_limit\":5}}").code,
            "bad-field");
}

TEST(Protocol, ParserNeverThrowsOnHostileInput) {
  const std::vector<std::string> hostile = {
      "",
      "null",
      "true",
      "3.14",
      "\"\\u0000\"",
      "{\"cmd\":null}",
      "{\"cmd\":\"submit\",\"profile\":\"s27\",\"config\":[1]}",
      "{\"cmd\":\"submit\",\"profile\":\"s27\",\"budget\":\"lots\"}",
      "{\"cmd\":\"submit\",\"bench\":true}",
      std::string(64, '{'),
      "{\"cmd\":\"status\",\"id\":1e99}",
  };
  for (const std::string& line : hostile) {
    Request req;
    ProtocolError err;
    EXPECT_NO_THROW({
      const bool ok = parse_request(line, req, err);
      if (!ok) {
        EXPECT_FALSE(err.code.empty()) << line;
      }
    }) << line;
  }
}

// ---- response writing -------------------------------------------------------

TEST(JsonWriter, BuildsNestedObjectsWithEscaping) {
  JsonWriter w;
  w.begin_object()
      .key("ok").value(true)
      .key("msg").value("line1\nline2 \"quoted\"")
      .key("nums").begin_array().value(std::uint64_t{1}).value(2.5)
          .value(std::int64_t{-3}).end_array()
      .key("inner").begin_object().key("k").value("v").end_object()
  .end_object();
  const std::string line = w.take();
  EXPECT_EQ(line,
            "{\"ok\":true,\"msg\":\"line1\\nline2 \\\"quoted\\\"\","
            "\"nums\":[1,2.5,-3],\"inner\":{\"k\":\"v\"}}\n");
  // Round-trips through the JSON reader.
  EXPECT_NO_THROW(telemetry::parse_json(line));
}

TEST(JsonWriter, ErrorLineIsParsable) {
  const std::string line = error_line({"bad-json", "oops at byte 3"});
  const telemetry::JsonValue v = telemetry::parse_json(line);
  ASSERT_TRUE(v.find("error"));
  EXPECT_EQ(v.find("error")->string_or("code", ""), "bad-json");
}

// ---- scheduler determinism --------------------------------------------------

std::vector<std::string> direct_run(const std::string& profile,
                                    std::uint64_t seed,
                                    std::size_t max_evals) {
  const Circuit c = benchmark_circuit(profile);
  FaultList faults(c);
  TestGenConfig cfg;
  cfg.seed = seed;
  GaTestGenerator gen(c, faults, cfg);
  RunControl ctrl;
  ctrl.budget.max_evaluations = max_evals;
  gen.set_run_control(ctrl);
  const TestGenResult r = gen.run();
  std::vector<std::string> out;
  for (const TestVector& v : r.test_set) out.push_back(logic_string(v));
  return out;
}

void wait_all_terminal(JobManager& jm, std::size_t expect) {
  for (int i = 0; i < 6000; ++i) {
    std::size_t terminal = 0;
    for (const JobSnapshot& s : jm.snapshot_all())
      if (s.state == JobState::Done || s.state == JobState::Cancelled ||
          s.state == JobState::Failed)
        ++terminal;
    if (terminal == expect) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "jobs did not reach a terminal state in time";
}

class SliceIdentity : public ::testing::TestWithParam<unsigned> {};

TEST_P(SliceIdentity, SlicedJobsMatchUninterruptedRuns) {
  // Aggressive 5 ms slices guarantee preemption; the final test set must
  // still match an uninterrupted in-process run bit for bit.
  const unsigned workers = GetParam();
  const std::vector<std::string> profiles = {"s27", "s298"};
  const std::size_t max_evals = 4000;

  ServeConfig cfg;
  cfg.workers = workers;
  cfg.slice_seconds = 0.005;
  JobManager jm(cfg);
  jm.start();

  std::vector<std::uint64_t> ids;
  ProtocolError err;
  for (const std::string& profile : profiles) {
    SubmitRequest req;
    req.profile = profile;
    req.name = profile;
    req.config.seed = 11;
    req.budget.max_evaluations = max_evals;
    const std::uint64_t id = jm.submit(req, err);
    ASSERT_NE(id, 0u) << err.message;
    ids.push_back(id);
  }
  wait_all_terminal(jm, ids.size());

  for (std::size_t i = 0; i < ids.size(); ++i) {
    JobSnapshot snap;
    std::vector<std::string> vectors;
    ASSERT_TRUE(jm.result(ids[i], snap, vectors, err)) << err.message;
    EXPECT_EQ(snap.state, JobState::Done);
    EXPECT_EQ(vectors, direct_run(profiles[i], 11, max_evals))
        << profiles[i] << " with " << workers << " workers, " << snap.slices
        << " slices";
  }
  jm.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Workers, SliceIdentity, ::testing::Values(1u, 4u));

// ---- scheduler lifecycle ----------------------------------------------------

TEST(Scheduler, CancelQueuedAndRunningJobs) {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.slice_seconds = 0.02;
  JobManager jm(cfg);
  jm.start();

  ProtocolError err;
  // An effectively unbounded job occupies the single worker...
  SubmitRequest big;
  big.profile = "s298";
  big.budget.max_evaluations = 100000000;
  const std::uint64_t running = jm.submit(big, err);
  ASSERT_NE(running, 0u);
  // ...so this one stays queued and cancels instantly.
  const std::uint64_t queued = jm.submit(big, err);
  ASSERT_NE(queued, 0u);

  EXPECT_TRUE(jm.cancel(queued, err));
  EXPECT_TRUE(jm.cancel(running, err));
  wait_all_terminal(jm, 2);
  JobSnapshot snap;
  ASSERT_TRUE(jm.snapshot(queued, snap, err));
  EXPECT_EQ(snap.state, JobState::Cancelled);
  ASSERT_TRUE(jm.snapshot(running, snap, err));
  EXPECT_EQ(snap.state, JobState::Cancelled);

  EXPECT_FALSE(jm.cancel(999, err));
  EXPECT_EQ(err.code, "unknown-job");
  std::vector<std::string> vectors;
  EXPECT_FALSE(jm.result(999, snap, vectors, err));
  EXPECT_EQ(err.code, "unknown-job");
  jm.shutdown();
}

TEST(Scheduler, ResultBeforeTerminalIsNotDone) {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.slice_seconds = 0.02;
  JobManager jm(cfg);
  jm.start();
  ProtocolError err;
  SubmitRequest big;
  big.profile = "s298";
  big.budget.max_evaluations = 100000000;
  const std::uint64_t id = jm.submit(big, err);
  ASSERT_NE(id, 0u);
  JobSnapshot snap;
  std::vector<std::string> vectors;
  EXPECT_FALSE(jm.result(id, snap, vectors, err));
  EXPECT_EQ(err.code, "not-done");
  jm.cancel(id, err);
  jm.shutdown();
}

TEST(Scheduler, WatchStreamsLifecycleAndGeneratorEvents) {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.slice_seconds = 0.0;  // run to completion
  JobManager jm(cfg);
  jm.start();
  ProtocolError err;

  auto all = jm.watch(false, 0, err);
  ASSERT_TRUE(all);

  SubmitRequest req;
  req.profile = "s27";
  req.budget.max_evaluations = 300;
  const std::uint64_t id = jm.submit(req, err);
  ASSERT_NE(id, 0u);
  wait_all_terminal(jm, 1);

  bool saw_submit = false, saw_done = false;
  std::string line;
  while (all->pop(line, 0.2)) {
    const telemetry::JsonValue v = telemetry::parse_json(line);
    EXPECT_EQ(static_cast<std::uint64_t>(v.number_or("job", 0)), id);
    const std::string type = v.string_or("type", "");
    if (type == "job_submit") saw_submit = true;
    if (type == "job_done") {
      saw_done = true;
      EXPECT_EQ(v.string_or("state", ""), "done");
      break;
    }
  }
  EXPECT_TRUE(saw_submit);
  EXPECT_TRUE(saw_done);
  jm.unsubscribe(all);

  // Watching an unknown job fails; watching a terminal one yields a closed
  // stream.
  EXPECT_FALSE(jm.watch(true, 999, err));
  EXPECT_EQ(err.code, "unknown-job");
  auto done_watch = jm.watch(true, id, err);
  ASSERT_TRUE(done_watch);
  EXPECT_FALSE(done_watch->pop(line, 0.05));
  EXPECT_TRUE(done_watch->closed_and_drained());
  jm.shutdown();
}

TEST(Scheduler, MetricsReportServerGauges) {
  ServeConfig cfg;
  cfg.workers = 2;
  JobManager jm(cfg);
  jm.start();
  ProtocolError err;
  SubmitRequest req;
  req.profile = "s27";
  req.budget.max_evaluations = 200;
  ASSERT_NE(jm.submit(req, err), 0u);
  wait_all_terminal(jm, 1);
  const telemetry::JsonValue m = telemetry::parse_json(jm.metrics_json());
  ASSERT_TRUE(m.find("counters"));
  EXPECT_EQ(m.find("counters")->number_or("serve.jobs_submitted", 0), 1.0);
  EXPECT_EQ(m.find("counters")->number_or("serve.jobs_done", 0), 1.0);
  ASSERT_TRUE(m.find("gauges"));
  EXPECT_EQ(m.find("gauges")->number_or("serve.workers", 0), 2.0);
  jm.shutdown();
}

// ---- socket end-to-end ------------------------------------------------------

TEST(Server, EndToEndOverTcp) {
  ServerConfig cfg;
  cfg.serve.workers = 1;
  cfg.serve.slice_seconds = 0.02;
  Server server(cfg);
  server.start();
  ASSERT_GT(server.port(), 0);
  std::thread runner([&server] { server.run(); });

  TcpConnection conn = tcp_connect("127.0.0.1", server.port());
  ASSERT_TRUE(conn.valid());
  auto rpc = [&conn](const std::string& req) {
    EXPECT_TRUE(conn.write_all(req + "\n"));
    std::string line;
    EXPECT_EQ(conn.read_line(line, kMaxRequestBytes),
              TcpConnection::ReadStatus::Ok);
    return telemetry::parse_json(line);
  };

  // Malformed input gets a structured error, not a dropped connection.
  EXPECT_EQ(rpc("{oops").find("error")->string_or("code", ""), "bad-json");

  const telemetry::JsonValue sub = rpc(
      "{\"cmd\":\"submit\",\"profile\":\"s27\","
      "\"config\":{\"seed\":5},\"budget\":{\"max_evals\":300}}");
  ASSERT_TRUE(sub.find("ok") && sub.find("ok")->boolean);
  const auto id = static_cast<std::uint64_t>(sub.number_or("id", 0));
  ASSERT_GT(id, 0u);

  std::string state;
  for (int i = 0; i < 2000 && state != "done"; ++i) {
    const telemetry::JsonValue st =
        rpc("{\"cmd\":\"status\",\"id\":" + std::to_string(id) + "}");
    state = st.find("job") ? st.find("job")->string_or("state", "") : "";
    if (state != "done")
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(state, "done");

  const telemetry::JsonValue res =
      rpc("{\"cmd\":\"result\",\"id\":" + std::to_string(id) + "}");
  ASSERT_TRUE(res.find("ok") && res.find("ok")->boolean);
  ASSERT_TRUE(res.find("vectors"));
  EXPECT_FALSE(res.find("vectors")->array.empty());

  const telemetry::JsonValue met = rpc("{\"cmd\":\"metrics\"}");
  ASSERT_TRUE(met.find("metrics"));
  EXPECT_GE(met.find("metrics")->find("counters")->number_or(
                "serve.requests", 0),
            4.0);

  const telemetry::JsonValue bye = rpc("{\"cmd\":\"shutdown\"}");
  EXPECT_TRUE(bye.find("ok") && bye.find("ok")->boolean);
  runner.join();
}

// ---- hostile-input hardening ------------------------------------------------

TEST(Protocol, DeeplyNestedDocumentsRejectedStructurally) {
  // A recursive-descent parser without a depth cap would exhaust its call
  // stack here; the cap turns it into an ordinary structured error.
  EXPECT_FALSE(parse_error(std::string(5000, '[')).code.empty());
  EXPECT_FALSE(parse_error(std::string(5000, '{')).code.empty());
  std::string nested_submit = "{\"cmd\":\"submit\",\"config\":";
  nested_submit.append(500, '[');
  EXPECT_FALSE(parse_error(nested_submit).code.empty());
}

TEST(Protocol, TruncatedMultibyteFrameAtCapBoundary) {
  // A frame cut mid-UTF-8-sequence exactly at the 1 MiB cap must produce a
  // structured error, never a throw or a read past the buffer.
  std::string line = "{\"cmd\":\"submit\",\"name\":\"";
  while (line.size() + 3 <= kMaxRequestBytes) line += "\xE2\x82\xAC";  // '€'
  while (line.size() < kMaxRequestBytes) line += '\xE2';  // truncated seq
  ASSERT_EQ(line.size(), kMaxRequestBytes);
  Request req;
  ProtocolError err;
  EXPECT_NO_THROW(EXPECT_FALSE(parse_request(line, req, err)));
  EXPECT_FALSE(err.code.empty());

  line += '\xE2';  // one byte past the cap: rejected before parsing
  EXPECT_EQ(parse_error(line).code, "oversized");
}

TEST(Protocol, SubmitJsonRoundTripsThroughParser) {
  SubmitRequest req;
  req.name = "round trip \"quoted\"";
  req.profile = "s344";
  req.config.seed = 77;
  req.config.generation_gap = 0.5;
  req.config.selection = SelectionScheme::TournamentNoReplacement;
  req.config.crossover = CrossoverScheme::Uniform;
  req.config.sequence_coding = Coding::NonBinary;
  req.config.fitness_cache = true;
  req.config.fsim_backend = "levelized";
  req.budget.max_evaluations = 1234;
  req.budget.max_vectors = 99;

  Request parsed;
  ProtocolError err;
  ASSERT_TRUE(parse_request(submit_json(req), parsed, err))
      << err.code << ": " << err.message;
  EXPECT_EQ(parsed.cmd, Command::Submit);
  EXPECT_EQ(parsed.submit.name, req.name);
  EXPECT_EQ(parsed.submit.profile, req.profile);
  EXPECT_EQ(parsed.submit.config.seed, req.config.seed);
  EXPECT_DOUBLE_EQ(parsed.submit.config.generation_gap,
                   req.config.generation_gap);
  EXPECT_EQ(parsed.submit.config.selection, req.config.selection);
  EXPECT_EQ(parsed.submit.config.crossover, req.config.crossover);
  EXPECT_EQ(parsed.submit.config.sequence_coding, req.config.sequence_coding);
  EXPECT_EQ(parsed.submit.config.fitness_cache, req.config.fitness_cache);
  EXPECT_EQ(parsed.submit.config.fsim_backend, req.config.fsim_backend);
  EXPECT_EQ(parsed.submit.budget.max_evaluations,
            req.budget.max_evaluations);
  EXPECT_EQ(parsed.submit.budget.max_vectors, req.budget.max_vectors);
}

TEST(Protocol, FsimBackendValidatedAgainstRegistry) {
  // Any registered engine name is accepted...
  for (const std::string& name : fault_sim_backend_names()) {
    Request parsed;
    ProtocolError err;
    ASSERT_TRUE(parse_request("{\"cmd\":\"submit\",\"profile\":\"s27\","
                              "\"config\":{\"fsim_backend\":\"" +
                                  name + "\"}}",
                              parsed, err))
        << err.code << ": " << err.message;
    EXPECT_EQ(parsed.submit.config.fsim_backend, name);
  }
  // ...an unknown name or a non-string value is a structured bad-field error.
  ProtocolError err = parse_error(
      "{\"cmd\":\"submit\",\"profile\":\"s27\","
      "\"config\":{\"fsim_backend\":\"warp\"}}");
  EXPECT_EQ(err.code, "bad-field");
  err = parse_error(
      "{\"cmd\":\"submit\",\"profile\":\"s27\","
      "\"config\":{\"fsim_backend\":7}}");
  EXPECT_EQ(err.code, "bad-field");
}

// ---- job journal ------------------------------------------------------------

namespace fs = std::filesystem;

/// Fresh per-test directory under the gtest temp root.
fs::path test_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("gatest_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

JournalRecord sample_record(std::uint64_t id) {
  JournalRecord rec;
  rec.id = id;
  SubmitRequest req;
  req.profile = "s27";
  req.config.seed = 5;
  req.budget.max_evaluations = 100;
  rec.submit_line = submit_json(req);
  rec.state = "done";
  rec.slices = 3;
  rec.evaluations = 100;
  rec.coverage = 0.5;
  rec.error = "multi\nline \\ with \x01 control";
  rec.vectors = {"0101", "11XX"};
  return rec;
}

TEST(Journal, SerializeParseRoundTrip) {
  const JournalRecord rec = sample_record(4);
  const JournalRecord back = Journal::parse(Journal::serialize(rec));
  EXPECT_EQ(back.submit_line, rec.submit_line);
  EXPECT_EQ(back.state, rec.state);
  EXPECT_EQ(back.slices, rec.slices);
  EXPECT_EQ(back.evaluations, rec.evaluations);
  EXPECT_DOUBLE_EQ(back.coverage, rec.coverage);
  EXPECT_EQ(back.error, rec.error);
  EXPECT_EQ(back.vectors, rec.vectors);

  JournalRecord queued = sample_record(5);
  queued.state = "queued";
  queued.vectors.clear();
  queued.error.clear();
  queued.checkpoint_text = "gatest-checkpoint v1\nnot validated here\n";
  const JournalRecord qback = Journal::parse(Journal::serialize(queued));
  EXPECT_EQ(qback.checkpoint_text, queued.checkpoint_text);
  EXPECT_TRUE(qback.error.empty());
}

TEST(Journal, ParseRejectsTornAndHostilePayloads) {
  const std::string good = Journal::serialize(sample_record(1));
  EXPECT_THROW(Journal::parse(""), std::runtime_error);
  EXPECT_THROW(Journal::parse(good.substr(0, good.size() / 2)),
               std::runtime_error);
  EXPECT_THROW(Journal::parse("state done\n"), std::runtime_error);
  EXPECT_THROW(Journal::parse(good + "trailing"), std::runtime_error);
  // A flipped vector-count field must fail cleanly, not drive a huge
  // allocation.
  std::string bloated = good;
  const auto pos = bloated.find("vectors 2");
  ASSERT_NE(pos, std::string::npos);
  bloated.replace(pos, 9, "vectors 999999999999");
  EXPECT_THROW(Journal::parse(bloated), std::runtime_error);
}

TEST(Journal, WriteScanRoundTripAndRemove) {
  const fs::path dir = test_dir("journal_rw");
  Journal j;
  j.open(dir.string());
  j.write(sample_record(2));
  j.write(sample_record(1));

  const Journal::ScanResult scan = j.scan();
  EXPECT_EQ(scan.corrupt, 0u);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].id, 1u);  // ascending id order
  EXPECT_EQ(scan.records[1].id, 2u);
  EXPECT_EQ(scan.records[0].vectors, sample_record(1).vectors);

  j.remove(1);
  EXPECT_EQ(j.scan().records.size(), 1u);
}

TEST(Journal, ScanQuarantinesCorruptRecords) {
  const fs::path dir = test_dir("journal_corrupt");
  Journal j;
  j.open(dir.string());
  j.write(sample_record(1));  // stays valid
  j.write(sample_record(2));  // gets a flipped byte
  j.write(sample_record(3));  // gets truncated
  j.write(sample_record(4));  // version-skewed header

  {  // flip one payload byte in record 2
    const fs::path p = dir / "job-2.rec";
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(p)) - 10);
    f.put('#');
  }
  fs::resize_file(dir / "job-3.rec", fs::file_size(dir / "job-3.rec") / 2);
  {  // rewrite record 4 with an unknown version
    std::ifstream in(dir / "job-4.rec", std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    text.replace(text.find("v1"), 2, "v9");
    std::ofstream out(dir / "job-4.rec", std::ios::binary | std::ios::trunc);
    out << text;
  }
  // A stale tmp from a crash between write and rename is swept.
  { std::ofstream(dir / "job-9.rec.tmp") << "half a record"; }

  const Journal::ScanResult scan = j.scan();
  EXPECT_EQ(scan.corrupt, 3u);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].id, 1u);
  EXPECT_TRUE(fs::exists(dir / "job-2.rec.corrupt"));
  EXPECT_FALSE(fs::exists(dir / "job-2.rec"));
  EXPECT_FALSE(fs::exists(dir / "job-9.rec.tmp"));
  // Quarantined files do not reappear on the next scan.
  const Journal::ScanResult again = j.scan();
  EXPECT_EQ(again.corrupt, 0u);
  EXPECT_EQ(again.records.size(), 1u);
}

// ---- crash/restart recovery -------------------------------------------------

/// Copy every completed record file — the moral equivalent of the disk
/// image an instant after kill -9 (per-record atomicity comes from the
/// write-tmp-then-rename protocol, so each copied file is internally
/// consistent even while the source manager keeps running).
void snapshot_state_dir(const fs::path& from, const fs::path& to) {
  fs::create_directories(to);
  for (const auto& e : fs::directory_iterator(from))
    if (e.path().extension() == ".rec")
      fs::copy_file(e.path(), to / e.path().filename(),
                    fs::copy_options::overwrite_existing);
}

class RecoveryIdentity : public ::testing::TestWithParam<unsigned> {};

TEST_P(RecoveryIdentity, RestartServesBitIdenticalResults) {
  const unsigned workers = GetParam();
  const fs::path dir =
      test_dir("recovery_" + std::to_string(workers) + "w");
  const fs::path crash_img = dir.string() + "_crash";
  const std::size_t max_evals = 4000;
  const std::vector<std::string> profiles = {"s27", "s298"};

  ServeConfig cfg;
  cfg.workers = workers;
  cfg.slice_seconds = 0.005;
  cfg.state_dir = dir.string();

  std::vector<std::uint64_t> ids;
  {
    JobManager jm(cfg);
    jm.start();
    ProtocolError err;
    for (const std::string& profile : profiles) {
      SubmitRequest req;
      req.profile = profile;
      req.config.seed = 11;
      req.budget.max_evaluations = max_evals;
      const std::uint64_t id = jm.submit(req, err);
      ASSERT_NE(id, 0u) << err.message;
      ids.push_back(id);
    }
    // Let a few slices land, snapshot the live dir as a crash image, then
    // shut down mid-flight (work-preserving: queued records stay on disk).
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    snapshot_state_dir(dir, crash_img);
    jm.shutdown();
  }

  // Both the gracefully-stopped dir and the mid-run crash image must
  // resume to the exact bits of an uninterrupted run.
  for (const fs::path& state : {dir, crash_img}) {
    ServeConfig rcfg = cfg;
    rcfg.state_dir = state.string();
    JobManager jm(rcfg);
    jm.start();
    ASSERT_EQ(jm.snapshot_all().size(), ids.size())
        << "recovery from " << state << " lost a job";
    wait_all_terminal(jm, ids.size());
    ProtocolError err;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      JobSnapshot snap;
      std::vector<std::string> vectors;
      ASSERT_TRUE(jm.result(ids[i], snap, vectors, err)) << err.message;
      EXPECT_EQ(snap.state, JobState::Done);
      EXPECT_EQ(vectors, direct_run(profiles[i], 11, max_evals))
          << profiles[i] << " recovered from " << state << " with "
          << workers << " workers";
    }
    jm.shutdown();
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, RecoveryIdentity, ::testing::Values(1u, 4u));

TEST(Recovery, TerminalResultsSurviveRestart) {
  const fs::path dir = test_dir("recovery_terminal");
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.slice_seconds = 0.0;
  cfg.state_dir = dir.string();

  std::uint64_t id = 0;
  std::vector<std::string> first;
  {
    JobManager jm(cfg);
    jm.start();
    ProtocolError err;
    SubmitRequest req;
    req.profile = "s27";
    req.config.seed = 3;
    req.budget.max_evaluations = 300;
    id = jm.submit(req, err);
    ASSERT_NE(id, 0u);
    wait_all_terminal(jm, 1);
    JobSnapshot snap;
    ASSERT_TRUE(jm.result(id, snap, first, err));
    jm.shutdown();
  }
  {
    JobManager jm(cfg);
    jm.start();
    // The job is already terminal on disk: no re-run, result immediately
    // available, and the id space continues after it.
    JobSnapshot snap;
    std::vector<std::string> again;
    ProtocolError err;
    ASSERT_TRUE(jm.result(id, snap, again, err)) << err.message;
    EXPECT_EQ(snap.state, JobState::Done);
    EXPECT_EQ(again, first);
    SubmitRequest req;
    req.profile = "s27";
    req.budget.max_evaluations = 100;
    EXPECT_GT(jm.submit(req, err), id);
    jm.shutdown();
  }
}

TEST(Recovery, CorruptCheckpointRequeuesFromScratch) {
  const fs::path dir = test_dir("recovery_badcp");
  SubmitRequest req;
  req.profile = "s27";
  req.config.seed = 9;
  req.budget.max_evaluations = 600;

  // Handcraft queued records whose embedded checkpoints are garbage and
  // version-skewed: recovery must discard the checkpoint with a diagnostic
  // and rerun from scratch — never fail the job, never crash.
  Journal j;
  j.open(dir.string());
  JournalRecord r1;
  r1.id = 1;
  r1.submit_line = submit_json(req);
  r1.checkpoint_text = "complete garbage\n";
  j.write(r1);
  JournalRecord r2 = r1;
  r2.id = 2;
  r2.checkpoint_text = "gatest-checkpoint v999\ncircuit s27\n";
  j.write(r2);

  ServeConfig cfg;
  cfg.workers = 1;
  cfg.slice_seconds = 0.0;
  cfg.state_dir = dir.string();
  JobManager jm(cfg);
  jm.start();
  wait_all_terminal(jm, 2);
  const std::vector<std::string> expected = direct_run("s27", 9, 600);
  ProtocolError err;
  for (std::uint64_t id : {1u, 2u}) {
    JobSnapshot snap;
    std::vector<std::string> vectors;
    ASSERT_TRUE(jm.result(id, snap, vectors, err)) << err.message;
    EXPECT_EQ(snap.state, JobState::Done);
    EXPECT_EQ(vectors, expected);
  }
  const telemetry::JsonValue m = telemetry::parse_json(jm.metrics_json());
  EXPECT_EQ(m.find("counters")->number_or("serve.checkpoints_discarded", 0),
            2.0);
  jm.shutdown();
}

TEST(Recovery, JournalWriteFailureRejectsSubmitDurably) {
  const fs::path dir = test_dir("recovery_joufail");
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.state_dir = dir.string();
  JobManager jm(cfg);
  jm.start();

  FaultInjector inj;
  std::string ferr;
  ASSERT_TRUE(FaultInjector::parse("journal_write:every=1", 1, inj, ferr))
      << ferr;
  FaultInjector::set_global(&inj);

  SubmitRequest req;
  req.profile = "s27";
  req.budget.max_evaluations = 100;
  ProtocolError err;
  // Durable ack: if the record cannot be fsynced the submit is refused with
  // a retryable error — the server never acknowledges a job it could lose.
  EXPECT_EQ(jm.submit(req, err), 0u);
  EXPECT_EQ(err.code, "journal-error");
  EXPECT_GT(err.retry_after_ms, 0u);
  EXPECT_GE(inj.injected(), 1u);

  FaultInjector::set_global(nullptr);
  EXPECT_NE(jm.submit(req, err), 0u) << err.message;
  wait_all_terminal(jm, 1);
  jm.shutdown();
  EXPECT_EQ(jm.metrics().counter("serve.journal_write_failures").value(), 1u);
}

// ---- torture: crash/restart cycles under fault injection --------------------

TEST(Torture, CrashRestartCyclesLoseNoJobsAndServeExactBits) {
  constexpr int kCycles = 25;
  constexpr std::size_t kJobs = 6;
  constexpr std::size_t kMaxEvals = 1500;
  const fs::path base = test_dir("torture");

  // Deterministic write-side fault injection: journal writes, fsyncs, and
  // renames all fail intermittently.  Submit-time failures surface as
  // retryable rejections; slice-time failures silently degrade to an older
  // checkpoint — neither may ever lose an acknowledged job or change bits.
  FaultInjector inj;
  std::string ferr;
  ASSERT_TRUE(FaultInjector::parse(
      "journal_write:p=0.10,journal_fsync:p=0.08,journal_rename:p=0.08", 42,
      inj, ferr))
      << ferr;
  FaultInjector::set_global(&inj);

  ServeConfig cfg;
  cfg.workers = 2;
  cfg.slice_seconds = 0.005;

  fs::path cur = base / "d0";
  fs::create_directories(cur);
  std::vector<std::uint64_t> ids;
  std::size_t submitted = 0;

  for (int cycle = 0; cycle < kCycles; ++cycle) {
    cfg.state_dir = cur.string();
    JobManager jm(cfg);
    jm.start();
    ProtocolError err;
    while (submitted < kJobs &&
           submitted < 2 * (static_cast<std::size_t>(cycle) + 1)) {
      SubmitRequest req;
      req.profile = "s27";
      req.name = "t";
      req.name += std::to_string(submitted);
      req.config.seed = 100 + submitted;
      req.budget.max_evaluations = kMaxEvals;
      std::uint64_t id = 0;
      for (int attempt = 0; attempt < 200 && id == 0; ++attempt) {
        id = jm.submit(req, err);
        if (id == 0) {
          ASSERT_EQ(err.code, "journal-error") << err.message;
        }
      }
      ASSERT_NE(id, 0u) << "submit never accepted under fault injection";
      ids.push_back(id);
      ++submitted;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    // "Crash": snapshot the live state dir mid-run and abandon this
    // manager; the next cycle boots from the frozen image.
    const fs::path next = base / ("d" + std::to_string(cycle + 1));
    snapshot_state_dir(cur, next);
    jm.shutdown();
    cur = next;
  }
  FaultInjector::set_global(nullptr);

  cfg.state_dir = cur.string();
  JobManager jm(cfg);
  jm.start();
  ASSERT_EQ(jm.snapshot_all().size(), kJobs)
      << "a job was lost across " << kCycles << " crash/restart cycles";
  wait_all_terminal(jm, kJobs);
  ProtocolError err;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    JobSnapshot snap;
    std::vector<std::string> vectors;
    ASSERT_TRUE(jm.result(ids[i], snap, vectors, err)) << err.message;
    EXPECT_EQ(snap.state, JobState::Done) << "job " << ids[i];
    EXPECT_EQ(vectors, direct_run("s27", 100 + i, kMaxEvals))
        << "job " << ids[i] << " served the wrong bits";
  }
  jm.shutdown();
}

// ---- overload protection ----------------------------------------------------

TEST(Overload, BoundedQueueShedsWatchersThenRejectsSubmits) {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.slice_seconds = 0.1;
  cfg.max_queued_jobs = 1;
  cfg.retry_after_ms = 250;
  JobManager jm(cfg);
  jm.start();
  ProtocolError err;

  SubmitRequest big;
  big.profile = "s298";
  big.budget.max_evaluations = 100000000;

  const std::uint64_t running = jm.submit(big, err);
  ASSERT_NE(running, 0u);
  // Wait until the single worker picks it up so the queue is empty again.
  for (int i = 0; i < 1000; ++i) {
    JobSnapshot s;
    ASSERT_TRUE(jm.snapshot(running, s, err));
    if (s.state == JobState::Running) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Subscribe while there is still room; once the queue saturates this
  // stream becomes shedding fodder.
  auto watcher = jm.watch(false, 0, err);
  ASSERT_TRUE(watcher) << err.message;

  const std::uint64_t queued = jm.submit(big, err);
  ASSERT_NE(queued, 0u);

  // Queue is now at its cap: the next submit sheds the watcher, then is
  // refused with a structured, retryable error.
  EXPECT_EQ(jm.submit(big, err), 0u);
  EXPECT_EQ(err.code, "overloaded");
  EXPECT_EQ(err.retry_after_ms, 250u);
  std::string drained;
  while (watcher->pop(drained, 0.0)) {
  }
  EXPECT_TRUE(watcher->closed_and_drained());
  // New watch streams are refused while saturated.
  EXPECT_FALSE(jm.watch(false, 0, err));
  EXPECT_EQ(err.code, "overloaded");

  const telemetry::JsonValue m = telemetry::parse_json(jm.metrics_json());
  EXPECT_GE(m.find("counters")->number_or("serve.overload_rejections", 0),
            1.0);
  EXPECT_GE(m.find("counters")->number_or("serve.watchers_shed", 0), 1.0);

  // Draining the queue lifts the rejection.
  ASSERT_TRUE(jm.cancel(queued, err));
  EXPECT_NE(jm.submit(big, err), 0u) << err.message;
  jm.cancel(running, err);
  jm.shutdown();
}

TEST(Overload, PerClientQuotaBoundsUnfinishedJobs) {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.slice_seconds = 0.1;
  cfg.max_jobs_per_client = 2;
  JobManager jm(cfg);
  jm.start();
  ProtocolError err;

  SubmitRequest big;
  big.profile = "s298";
  big.budget.max_evaluations = 100000000;

  const std::uint64_t a1 = jm.submit(big, err, /*client=*/7);
  const std::uint64_t a2 = jm.submit(big, err, 7);
  ASSERT_NE(a1, 0u);
  ASSERT_NE(a2, 0u);
  EXPECT_EQ(jm.submit(big, err, 7), 0u);
  EXPECT_EQ(err.code, "quota-exceeded");
  EXPECT_GT(err.retry_after_ms, 0u);
  // Other clients are unaffected, and client 0 (in-process) is exempt.
  EXPECT_NE(jm.submit(big, err, 8), 0u) << err.message;
  EXPECT_NE(jm.submit(big, err, 0), 0u) << err.message;

  // Finishing a job releases quota.
  ASSERT_TRUE(jm.cancel(a2, err));
  EXPECT_NE(jm.submit(big, err, 7), 0u) << err.message;

  for (const JobSnapshot& s : jm.snapshot_all()) jm.cancel(s.id, err);
  jm.shutdown();
}

// ---- client backoff ---------------------------------------------------------

TEST(Backoff, FullJitterHonorsHintAndCap) {
  BackoffPolicy p;
  p.base_ms = 100;
  p.cap_ms = 400;
  p.max_attempts = 5;
  Backoff b(p, /*seed=*/3);
  unsigned prev_window = 0;
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(b.can_retry());
    const unsigned d = b.next_delay_ms(/*server_hint_ms=*/1000);
    EXPECT_GE(d, 1000u);  // the server's floor is always honored
    EXPECT_LE(d, 1000u + 400u);  // and the jitter window is capped
    prev_window = d;
  }
  (void)prev_window;
  EXPECT_FALSE(b.can_retry());
  b.reset();
  EXPECT_TRUE(b.can_retry());

  // Same policy + seed = same schedule (torture runs are replayable).
  Backoff b1(p, 9), b2(p, 9);
  for (int k = 0; k < 5; ++k)
    EXPECT_EQ(b1.next_delay_ms(50), b2.next_delay_ms(50));
}

TEST(Backoff, RetryableErrorRecognizesBackpressureCodes) {
  unsigned hint = 123;
  EXPECT_TRUE(retryable_error(error_line({"overloaded", "full", 250}), hint));
  EXPECT_EQ(hint, 250u);
  EXPECT_TRUE(retryable_error(error_line({"quota-exceeded", "cap", 0}), hint));
  EXPECT_EQ(hint, 0u);
  EXPECT_TRUE(retryable_error(error_line({"journal-error", "disk", 80}), hint));
  EXPECT_FALSE(retryable_error(error_line({"bad-json", "oops"}), hint));
  EXPECT_FALSE(retryable_error(ok_line(), hint));
  EXPECT_FALSE(retryable_error("not json at all", hint));
  EXPECT_FALSE(retryable_error("", hint));
}

// ---- connection robustness --------------------------------------------------

TEST(Server, MidFrameDisconnectNeverKillsAWorker) {
  ServerConfig cfg;
  cfg.serve.workers = 1;
  cfg.serve.slice_seconds = 0.02;
  Server server(cfg);
  server.start();
  std::thread runner([&server] { server.run(); });

  // Client 1 dies mid-frame (bytes sent, no newline, abrupt close).
  {
    TcpConnection c1 = tcp_connect("127.0.0.1", server.port());
    ASSERT_TRUE(c1.write_all("{\"cmd\":\"sta"));
  }
  // Client 2 submits a job and watches it, then vanishes while the server
  // is streaming events at it — the resulting dead-socket writes must hit
  // the error path (EPIPE), not raise SIGPIPE and kill the process.
  std::uint64_t id = 0;
  {
    TcpConnection c2 = tcp_connect("127.0.0.1", server.port());
    ASSERT_TRUE(c2.write_all(
        "{\"cmd\":\"submit\",\"profile\":\"s298\","
        "\"budget\":{\"max_evals\":20000}}\n"));
    std::string line;
    ASSERT_EQ(c2.read_line(line, kMaxRequestBytes),
              TcpConnection::ReadStatus::Ok);
    id = static_cast<std::uint64_t>(
        telemetry::parse_json(line).number_or("id", 0));
    ASSERT_GT(id, 0u);
    ASSERT_TRUE(c2.write_all("{\"cmd\":\"watch\"}\n"));
    ASSERT_EQ(c2.read_line(line, kMaxRequestBytes),
              TcpConnection::ReadStatus::Ok);  // watch ack, then walk away
  }

  // A fresh client still gets full service: the job runs to completion.
  TcpConnection c3 = tcp_connect("127.0.0.1", server.port());
  ASSERT_TRUE(c3.valid());
  std::string state;
  for (int i = 0; i < 2000 && state != "done"; ++i) {
    ASSERT_TRUE(c3.write_all("{\"cmd\":\"status\",\"id\":" +
                             std::to_string(id) + "}\n"));
    std::string line;
    ASSERT_EQ(c3.read_line(line, kMaxRequestBytes),
              TcpConnection::ReadStatus::Ok);
    const telemetry::JsonValue st = telemetry::parse_json(line);
    state = st.find("job") ? st.find("job")->string_or("state", "") : "";
    if (state != "done")
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(state, "done");
  ASSERT_TRUE(c3.write_all("{\"cmd\":\"shutdown\"}\n"));
  runner.join();
}

TEST(Server, IdleConnectionsAreTimedOutWithDiagnostic) {
  ServerConfig cfg;
  cfg.serve.workers = 1;
  cfg.idle_timeout_seconds = 0.1;
  Server server(cfg);
  server.start();
  std::thread runner([&server] { server.run(); });

  TcpConnection conn = tcp_connect("127.0.0.1", server.port());
  ASSERT_TRUE(conn.valid());
  // Send nothing; the server must write an idle-timeout error and close.
  std::string line;
  ASSERT_EQ(conn.read_line(line, kMaxRequestBytes),
            TcpConnection::ReadStatus::Ok);
  const telemetry::JsonValue v = telemetry::parse_json(line);
  ASSERT_TRUE(v.find("error"));
  EXPECT_EQ(v.find("error")->string_or("code", ""), "idle-timeout");
  EXPECT_EQ(conn.read_line(line, kMaxRequestBytes),
            TcpConnection::ReadStatus::Eof);

  // An active connection is unaffected as long as it keeps talking.
  TcpConnection live = tcp_connect("127.0.0.1", server.port());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(live.write_all("{\"cmd\":\"status\"}\n"));
    ASSERT_EQ(live.read_line(line, kMaxRequestBytes),
              TcpConnection::ReadStatus::Ok);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  ASSERT_TRUE(live.write_all("{\"cmd\":\"shutdown\"}\n"));
  runner.join();
}


// ---- http observability plane -----------------------------------------------

struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
};

/// Append whatever bytes are pending on `fd` to `acc`; false on EOF/error.
bool recv_some(int fd, std::string& acc) {
  char buf[4096];
  const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
  if (n <= 0) return false;
  acc.append(buf, static_cast<std::size_t>(n));
  return true;
}

/// Parse one complete HTTP response out of `acc` (receiving more as
/// needed), consuming exactly the bytes it occupied so keep-alive
/// connections can read the next response from the same buffer.
bool read_http_response(TcpConnection& conn, std::string& acc,
                        HttpResponse& out, bool head_request = false) {
  std::size_t hdr_end;
  while ((hdr_end = acc.find("\r\n\r\n")) == std::string::npos)
    if (!recv_some(conn.fd(), acc)) return false;

  const std::string head = acc.substr(0, hdr_end);
  std::size_t pos = head.find("\r\n");
  const std::string status_line = head.substr(0, pos);
  if (status_line.rfind("HTTP/1.1 ", 0) != 0) return false;
  out.status = std::atoi(status_line.c_str() + 9);

  out.headers.clear();
  while (pos != std::string::npos && pos + 2 < head.size()) {
    const std::size_t eol = head.find("\r\n", pos + 2);
    const std::string line = head.substr(
        pos + 2, eol == std::string::npos ? std::string::npos : eol - pos - 2);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      std::size_t v = colon + 1;
      while (v < line.size() && line[v] == ' ') ++v;
      out.headers[name] = line.substr(v);
    }
    pos = eol;
  }

  std::size_t content_length = 0;
  const auto it = out.headers.find("content-length");
  if (it != out.headers.end())
    content_length = static_cast<std::size_t>(std::atoll(it->second.c_str()));

  const std::size_t body_start = hdr_end + 4;
  if (head_request) content_length = 0;  // HEAD: Content-Length, no body
  while (acc.size() < body_start + content_length)
    if (!recv_some(conn.fd(), acc)) return false;
  out.body = acc.substr(body_start, content_length);
  acc.erase(0, body_start + content_length);
  return true;
}

/// One request/response round trip on an established connection.
bool http_get(TcpConnection& conn, std::string& acc, const std::string& raw,
              HttpResponse& out) {
  return conn.write_all(raw) &&
         read_http_response(conn, acc, out, raw.rfind("HEAD ", 0) == 0);
}

TEST(Http, ResponseFormatting) {
  const std::string r =
      HttpServer::response(200, "text/plain; charset=utf-8", "ok\n", false);
  EXPECT_EQ(r.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(r.find("Content-Type: text/plain; charset=utf-8\r\n"),
            std::string::npos);
  EXPECT_NE(r.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_EQ(r.find("Connection: close"), std::string::npos);
  EXPECT_EQ(r.substr(r.size() - 7), "\r\n\r\nok\n");

  // HEAD keeps Content-Length but elides the body (RFC 9110 section 9.3.2).
  const std::string h = HttpServer::response(
      200, "text/plain; charset=utf-8", "ok\n", true, /*head=*/true);
  EXPECT_NE(h.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(h.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(h.substr(h.size() - 4), "\r\n\r\n");

  const std::string e =
      HttpServer::response(404, "text/plain; charset=utf-8", "nope\n", true);
  EXPECT_EQ(e.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u);
}

TEST(Http, HandleRoutesReadOnly) {
  ServeConfig cfg;
  cfg.workers = 1;
  JobManager jm(cfg);
  jm.start();

  auto get = [&jm](const std::string& target, const char* method = "GET") {
    HttpServer::Request req;
    req.method = method;
    req.target = target;
    return HttpServer::handle(jm, req);
  };

  EXPECT_NE(get("/healthz").find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(get("/healthz").find("ok\n"), std::string::npos);
  EXPECT_NE(get("/metrics").find("# TYPE"), std::string::npos);
  EXPECT_NE(get("/jobs").find("{\"jobs\":[]}"), std::string::npos);
  EXPECT_EQ(get("/jobs/999").rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_EQ(get("/jobs/0").rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_EQ(get("/jobs/12abc").rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_EQ(get("/nope").rfind("HTTP/1.1 404", 0), 0u);
  // The control plane stays on the line protocol: writes are rejected.
  EXPECT_EQ(get("/metrics", "POST").rfind("HTTP/1.1 405", 0), 0u);
  EXPECT_EQ(get("/jobs", "DELETE").rfind("HTTP/1.1 405", 0), 0u);

  jm.shutdown();
}

TEST(Http, EndToEndScrapeJobsAndKeepAlive) {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.slice_seconds = 0.02;
  JobManager jm(cfg);
  jm.start();
  HttpServer http(jm, "127.0.0.1", 0);
  http.start();
  ASSERT_GT(http.port(), 0);

  SubmitRequest req;
  req.profile = "s27";
  req.name = "s27";
  req.config.seed = 3;
  req.budget.max_evaluations = 300;
  ProtocolError err;
  const std::uint64_t id = jm.submit(req, err);
  ASSERT_NE(id, 0u) << err.message;
  wait_all_terminal(jm, 1);

  TcpConnection conn = tcp_connect("127.0.0.1", http.port());
  ASSERT_TRUE(conn.valid());
  std::string acc;
  HttpResponse r;

  // Several requests on one keep-alive connection.
  ASSERT_TRUE(http_get(conn, acc, "GET /metrics HTTP/1.1\r\n\r\n", r));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.headers["content-type"],
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(r.body.find("# TYPE serve_jobs_submitted counter"),
            std::string::npos);

  ASSERT_TRUE(http_get(
      conn, acc,
      "GET /jobs/" + std::to_string(id) + " HTTP/1.1\r\n\r\n", r));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.headers["content-type"], "application/json");
  EXPECT_NE(r.body.find("\"state\":\"done\""), std::string::npos);

  // HEAD: headers identical to GET, zero body bytes on the wire.
  ASSERT_TRUE(http_get(conn, acc, "HEAD /healthz HTTP/1.1\r\n\r\n", r));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.headers["content-length"], "3");
  EXPECT_TRUE(r.body.empty());
  EXPECT_TRUE(acc.empty());  // nothing left over: the body really was elided

  // Connection: close is honored — response, then EOF.
  ASSERT_TRUE(http_get(conn, acc,
                       "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
                       r));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.headers["connection"], "close");
  EXPECT_FALSE(recv_some(conn.fd(), acc));

  http.stop();
  jm.shutdown();
}

TEST(Http, RejectsAbusiveRequests) {
  ServeConfig cfg;
  cfg.workers = 1;
  JobManager jm(cfg);
  jm.start();
  HttpServer http(jm, "127.0.0.1", 0);
  http.start();

  auto one_shot = [&http](const std::string& raw) {
    TcpConnection conn = tcp_connect("127.0.0.1", http.port());
    EXPECT_TRUE(conn.valid());
    std::string acc;
    HttpResponse r;
    EXPECT_TRUE(http_get(conn, acc, raw, r)) << raw.substr(0, 60);
    // Every rejection closes the connection after the response.
    EXPECT_FALSE(recv_some(conn.fd(), acc));
    return r.status;
  };

  // 405 is a well-formed exchange, so the connection stays usable.
  {
    TcpConnection conn = tcp_connect("127.0.0.1", http.port());
    ASSERT_TRUE(conn.valid());
    std::string acc;
    HttpResponse r;
    ASSERT_TRUE(http_get(conn, acc, "POST /metrics HTTP/1.1\r\n\r\n", r));
    EXPECT_EQ(r.status, 405);
    ASSERT_TRUE(http_get(conn, acc, "GET /healthz HTTP/1.1\r\n\r\n", r));
    EXPECT_EQ(r.status, 200);
  }

  // Malformed input: answered with a status, then the socket is dropped.
  EXPECT_EQ(one_shot("complete garbage\r\n\r\n"), 400);
  EXPECT_EQ(one_shot("GET\r\n\r\n"), 400);
  EXPECT_EQ(one_shot("GET /metrics SPDY/99\r\n\r\n"), 400);
  EXPECT_EQ(one_shot("GET relative-no-slash HTTP/1.1\r\n\r\n"), 400);
  EXPECT_EQ(one_shot("GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            400);
  EXPECT_EQ(one_shot("GET /healthz HTTP/1.1\r\n: empty-name\r\n\r\n"),
            400);

  // Oversized request line: 414, connection dropped.
  EXPECT_EQ(one_shot("GET /" + std::string(10 * 1024, 'a') +
                     " HTTP/1.1\r\n\r\n"),
            414);

  // Header flood: 431.
  std::string flood = "GET /healthz HTTP/1.1\r\n";
  for (int i = 0; i < 200; ++i)
    flood += "X-Flood-" + std::to_string(i) + ": y\r\n";
  flood += "\r\n";
  EXPECT_EQ(one_shot(flood), 431);

  http.stop();
  jm.shutdown();
}

TEST(Http, IdleSocketsGetRequestTimeout) {
  ServeConfig cfg;
  cfg.workers = 1;
  JobManager jm(cfg);
  jm.start();
  HttpServer http(jm, "127.0.0.1", 0, /*idle_timeout_seconds=*/0.1);
  http.start();

  TcpConnection conn = tcp_connect("127.0.0.1", http.port());
  ASSERT_TRUE(conn.valid());
  std::string acc;
  HttpResponse r;
  // Send nothing: the server must answer 408 and close, not hold the slot.
  ASSERT_TRUE(read_http_response(conn, acc, r));
  EXPECT_EQ(r.status, 408);
  EXPECT_FALSE(recv_some(conn.fd(), acc));

  // Slowloris: trickle partial request-line bytes.  The idle deadline spans
  // partial reads, so a never-completing line still times out at 408.
  TcpConnection slow = tcp_connect("127.0.0.1", http.port());
  ASSERT_TRUE(slow.valid());
  std::string slow_acc;
  std::thread dripper([&slow] {
    for (const char* piece : {"GET", " /he", "alth"}) {
      if (!slow.write_all(piece)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
    // Never send the terminating CRLF.
  });
  ASSERT_TRUE(read_http_response(slow, slow_acc, r));
  EXPECT_EQ(r.status, 408);
  EXPECT_FALSE(recv_some(slow.fd(), slow_acc));
  dripper.join();

  http.stop();
  jm.shutdown();
}

TEST(Http, FuzzedRequestBytesNeverCrashTheServer) {
  ServeConfig cfg;
  cfg.workers = 1;
  JobManager jm(cfg);
  jm.start();
  HttpServer http(jm, "127.0.0.1", 0, /*idle_timeout_seconds=*/2.0);
  http.start();

  // Deterministic garbage: random bytes (newline-terminated so the server
  // sees a complete "request line"), random methods, random targets.  The
  // server must answer every one with a well-formed HTTP status or close
  // the connection — and keep serving afterwards.
  std::mt19937 rng(20260808);
  for (int round = 0; round < 60; ++round) {
    std::string raw;
    switch (round % 4) {
      case 0: {  // pure noise
        const std::size_t len = 1 + rng() % 256;
        for (std::size_t i = 0; i < len; ++i)
          raw += static_cast<char>(1 + rng() % 255);  // no embedded NUL
        raw += "\r\n\r\n";
        break;
      }
      case 1: {  // method fuzz
        static const char* kMethods[] = {"OPTIONS", "TRACE", "PATCH",
                                         "get", "G E T", ""};
        raw = std::string(kMethods[rng() % 6]) + " /metrics HTTP/1.1\r\n\r\n";
        break;
      }
      case 2: {  // target fuzz
        std::string target = "/";
        const std::size_t len = rng() % 64;
        for (std::size_t i = 0; i < len; ++i)
          target += static_cast<char>(32 + rng() % 95);
        raw = "GET " + target + " HTTP/1.1\r\n\r\n";
        break;
      }
      default: {  // header fuzz
        raw = "GET /healthz HTTP/1.1\r\n";
        const std::size_t n = rng() % 8;
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t len = rng() % 48;
          for (std::size_t j = 0; j < len; ++j)
            raw += static_cast<char>(32 + rng() % 95);
          raw += "\r\n";
        }
        raw += "\r\n";
        break;
      }
    }
    TcpConnection conn = tcp_connect("127.0.0.1", http.port());
    ASSERT_TRUE(conn.valid());
    std::string acc;
    HttpResponse r;
    if (conn.write_all(raw) && read_http_response(conn, acc, r)) {
      EXPECT_TRUE(r.status >= 200 && r.status < 600) << r.status;
    }
    // else: dropped connection is acceptable for hostile input
  }

  // The plane survived all of it.
  TcpConnection conn = tcp_connect("127.0.0.1", http.port());
  ASSERT_TRUE(conn.valid());
  std::string acc;
  HttpResponse r;
  ASSERT_TRUE(http_get(conn, acc, "GET /healthz HTTP/1.1\r\n\r\n", r));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "ok\n");

  http.stop();
  jm.shutdown();
}

TEST(Http, RequestsWithBodiesAreRejected) {
  ServeConfig cfg;
  cfg.workers = 1;
  JobManager jm(cfg);
  jm.start();
  HttpServer http(jm, "127.0.0.1", 0);
  http.start();

  // The server never consumes a body, so on keep-alive the body bytes would
  // be misparsed as the next request line.  Any body announcement is 400'd
  // and the connection closed before desync can happen.
  for (const char* raw :
       {"GET /healthz HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
        "GET /metrics HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        "0\r\n\r\n"}) {
    TcpConnection conn = tcp_connect("127.0.0.1", http.port());
    ASSERT_TRUE(conn.valid());
    std::string acc;
    HttpResponse r;
    ASSERT_TRUE(http_get(conn, acc, raw, r)) << raw;
    EXPECT_EQ(r.status, 400) << raw;
    EXPECT_FALSE(recv_some(conn.fd(), acc));
  }

  http.stop();
  jm.shutdown();
}

TEST(Http, ConnectionCapAnswers503AndRecovers) {
  ServeConfig cfg;
  cfg.workers = 1;
  JobManager jm(cfg);
  jm.start();
  HttpServer http(jm, "127.0.0.1", 0, /*idle_timeout_seconds=*/10.0,
                  /*max_connections=*/2);
  http.start();

  // Fill the two slots with keep-alive connections that have each completed
  // a request (so their handler threads are definitely live) and then idle.
  std::vector<TcpConnection> held;
  for (int i = 0; i < 2; ++i) {
    TcpConnection conn = tcp_connect("127.0.0.1", http.port());
    ASSERT_TRUE(conn.valid());
    std::string acc;
    HttpResponse r;
    ASSERT_TRUE(http_get(conn, acc, "GET /healthz HTTP/1.1\r\n\r\n", r));
    EXPECT_EQ(r.status, 200);
    held.push_back(std::move(conn));
  }

  // Past the cap: 503 straight off the accept loop — no request needed,
  // no handler thread spawned — and the socket is closed.
  {
    TcpConnection conn = tcp_connect("127.0.0.1", http.port());
    ASSERT_TRUE(conn.valid());
    std::string acc;
    HttpResponse r;
    ASSERT_TRUE(read_http_response(conn, acc, r));
    EXPECT_EQ(r.status, 503);
    EXPECT_FALSE(recv_some(conn.fd(), acc));
  }

  // Release the slots; the accept loop reaps the finished handlers and the
  // plane serves again.  Allow a few retries for the handlers to wind down.
  held.clear();
  int status = 0;
  for (int attempt = 0; attempt < 100 && status != 200; ++attempt) {
    TcpConnection conn = tcp_connect("127.0.0.1", http.port());
    ASSERT_TRUE(conn.valid());
    // If the slot is still held, the first response on the wire is the
    // accept loop's 503 regardless of what we send; otherwise it is our 200.
    conn.write_all("GET /healthz HTTP/1.1\r\n\r\n");
    std::string acc;
    HttpResponse r;
    if (read_http_response(conn, acc, r)) status = r.status;
    if (status != 200)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(status, 200);

  http.stop();
  jm.shutdown();
}

}  // namespace
}  // namespace gatest::serve
