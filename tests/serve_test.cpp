// gatest_serve tests: protocol parsing/validation (no sockets), response
// writing, scheduler determinism under time slicing, and one socket-level
// end-to-end pass through the server.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "circuitgen/circuitgen.h"
#include "fault/fault.h"
#include "gatest/test_generator.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "sim/logic.h"
#include "telemetry/json.h"
#include "util/net.h"

namespace gatest::serve {
namespace {

// ---- request parsing --------------------------------------------------------

ProtocolError parse_error(const std::string& line) {
  Request req;
  ProtocolError err;
  EXPECT_FALSE(parse_request(line, req, err)) << line;
  return err;
}

TEST(Protocol, RejectsMalformedJson) {
  EXPECT_EQ(parse_error("{not json").code, "bad-json");
  EXPECT_EQ(parse_error("\"cmd\"").code, "not-object");
  EXPECT_EQ(parse_error("[1,2]").code, "not-object");
  EXPECT_EQ(parse_error("{}").code, "missing-field");
  EXPECT_EQ(parse_error("{\"cmd\":42}").code, "bad-field");
  EXPECT_EQ(parse_error("{\"cmd\":\"frobnicate\"}").code, "unknown-command");
}

TEST(Protocol, RejectsOversizedFrame) {
  std::string line = "{\"cmd\":\"status\",\"pad\":\"";
  line.append(kMaxRequestBytes, 'x');
  line += "\"}";
  EXPECT_EQ(parse_error(line).code, "oversized");
}

TEST(Protocol, RequiresIdWhereItMatters) {
  EXPECT_EQ(parse_error("{\"cmd\":\"cancel\"}").code, "missing-field");
  EXPECT_EQ(parse_error("{\"cmd\":\"result\"}").code, "missing-field");
  EXPECT_EQ(parse_error("{\"cmd\":\"cancel\",\"id\":-1}").code, "bad-field");
  EXPECT_EQ(parse_error("{\"cmd\":\"cancel\",\"id\":1.5}").code, "bad-field");

  Request req;
  ProtocolError err;
  // status and watch work with or without an id.
  ASSERT_TRUE(parse_request("{\"cmd\":\"status\"}", req, err));
  EXPECT_FALSE(req.has_id);
  ASSERT_TRUE(parse_request("{\"cmd\":\"status\",\"id\":7}", req, err));
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(req.id, 7u);
}

TEST(Protocol, SubmitNeedsExactlyOneCircuitSource) {
  EXPECT_EQ(parse_error("{\"cmd\":\"submit\"}").code, "missing-field");
  EXPECT_EQ(
      parse_error(
          "{\"cmd\":\"submit\",\"profile\":\"s27\",\"bench\":\"INPUT(a)\"}")
          .code,
      "missing-field");
  EXPECT_EQ(parse_error("{\"cmd\":\"submit\",\"profile\":\"\"}").code,
            "bad-field");
  EXPECT_EQ(parse_error("{\"cmd\":\"submit\",\"profile\":17}").code,
            "bad-field");
}

TEST(Protocol, SubmitMapsConfigAndBudget) {
  Request req;
  ProtocolError err;
  ASSERT_TRUE(parse_request(
      "{\"cmd\":\"submit\",\"profile\":\"s298\",\"name\":\"n1\","
      "\"config\":{\"seed\":42,\"gap\":0.5,\"selection\":\"tournament\","
      "\"crossover\":\"uniform\",\"coding\":\"nonbinary\","
      "\"fitness_cache\":true},"
      "\"budget\":{\"max_evals\":500,\"max_vectors\":9}}",
      req, err))
      << err.code << ": " << err.message;
  EXPECT_EQ(req.cmd, Command::Submit);
  EXPECT_EQ(req.submit.profile, "s298");
  EXPECT_EQ(req.submit.name, "n1");
  EXPECT_EQ(req.submit.config.seed, 42u);
  EXPECT_DOUBLE_EQ(req.submit.config.generation_gap, 0.5);
  EXPECT_EQ(req.submit.config.selection,
            SelectionScheme::TournamentNoReplacement);
  EXPECT_EQ(req.submit.config.crossover, CrossoverScheme::Uniform);
  EXPECT_EQ(req.submit.config.sequence_coding, Coding::NonBinary);
  EXPECT_TRUE(req.submit.config.fitness_cache);
  EXPECT_EQ(req.submit.budget.max_evaluations, 500u);
  EXPECT_EQ(req.submit.budget.max_vectors, 9u);
}

TEST(Protocol, SubmitRejectsBadKnobs) {
  const std::string prefix = "{\"cmd\":\"submit\",\"profile\":\"s27\",";
  EXPECT_EQ(parse_error(prefix + "\"config\":{\"speling\":1}}").code,
            "bad-field");
  EXPECT_EQ(parse_error(prefix + "\"config\":{\"gap\":0}}").code, "bad-field");
  EXPECT_EQ(parse_error(prefix + "\"config\":{\"gap\":1.5}}").code,
            "bad-field");
  EXPECT_EQ(parse_error(prefix + "\"config\":{\"threads\":0}}").code,
            "bad-field");
  EXPECT_EQ(parse_error(prefix + "\"config\":{\"selection\":\"best\"}}").code,
            "bad-field");
  EXPECT_EQ(parse_error(prefix + "\"budget\":{\"max_evals\":0}}").code,
            "bad-field");
  EXPECT_EQ(parse_error(prefix + "\"budget\":{\"fuel\":3}}").code,
            "bad-field");
  // Wall-clock budgets are rejected for served jobs: slice segments restart
  // the clock, so the budget would not be cumulative.
  EXPECT_EQ(parse_error(prefix + "\"budget\":{\"time_limit\":5}}").code,
            "bad-field");
}

TEST(Protocol, ParserNeverThrowsOnHostileInput) {
  const std::vector<std::string> hostile = {
      "",
      "null",
      "true",
      "3.14",
      "\"\\u0000\"",
      "{\"cmd\":null}",
      "{\"cmd\":\"submit\",\"profile\":\"s27\",\"config\":[1]}",
      "{\"cmd\":\"submit\",\"profile\":\"s27\",\"budget\":\"lots\"}",
      "{\"cmd\":\"submit\",\"bench\":true}",
      std::string(64, '{'),
      "{\"cmd\":\"status\",\"id\":1e99}",
  };
  for (const std::string& line : hostile) {
    Request req;
    ProtocolError err;
    EXPECT_NO_THROW({
      const bool ok = parse_request(line, req, err);
      if (!ok) {
        EXPECT_FALSE(err.code.empty()) << line;
      }
    }) << line;
  }
}

// ---- response writing -------------------------------------------------------

TEST(JsonWriter, BuildsNestedObjectsWithEscaping) {
  JsonWriter w;
  w.begin_object()
      .key("ok").value(true)
      .key("msg").value("line1\nline2 \"quoted\"")
      .key("nums").begin_array().value(std::uint64_t{1}).value(2.5)
          .value(std::int64_t{-3}).end_array()
      .key("inner").begin_object().key("k").value("v").end_object()
  .end_object();
  const std::string line = w.take();
  EXPECT_EQ(line,
            "{\"ok\":true,\"msg\":\"line1\\nline2 \\\"quoted\\\"\","
            "\"nums\":[1,2.5,-3],\"inner\":{\"k\":\"v\"}}\n");
  // Round-trips through the JSON reader.
  EXPECT_NO_THROW(telemetry::parse_json(line));
}

TEST(JsonWriter, ErrorLineIsParsable) {
  const std::string line = error_line({"bad-json", "oops at byte 3"});
  const telemetry::JsonValue v = telemetry::parse_json(line);
  ASSERT_TRUE(v.find("error"));
  EXPECT_EQ(v.find("error")->string_or("code", ""), "bad-json");
}

// ---- scheduler determinism --------------------------------------------------

std::vector<std::string> direct_run(const std::string& profile,
                                    std::uint64_t seed,
                                    std::size_t max_evals) {
  const Circuit c = benchmark_circuit(profile);
  FaultList faults(c);
  TestGenConfig cfg;
  cfg.seed = seed;
  GaTestGenerator gen(c, faults, cfg);
  RunControl ctrl;
  ctrl.budget.max_evaluations = max_evals;
  gen.set_run_control(ctrl);
  const TestGenResult r = gen.run();
  std::vector<std::string> out;
  for (const TestVector& v : r.test_set) out.push_back(logic_string(v));
  return out;
}

void wait_all_terminal(JobManager& jm, std::size_t expect) {
  for (int i = 0; i < 6000; ++i) {
    std::size_t terminal = 0;
    for (const JobSnapshot& s : jm.snapshot_all())
      if (s.state == JobState::Done || s.state == JobState::Cancelled ||
          s.state == JobState::Failed)
        ++terminal;
    if (terminal == expect) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "jobs did not reach a terminal state in time";
}

class SliceIdentity : public ::testing::TestWithParam<unsigned> {};

TEST_P(SliceIdentity, SlicedJobsMatchUninterruptedRuns) {
  // Aggressive 5 ms slices guarantee preemption; the final test set must
  // still match an uninterrupted in-process run bit for bit.
  const unsigned workers = GetParam();
  const std::vector<std::string> profiles = {"s27", "s298"};
  const std::size_t max_evals = 4000;

  ServeConfig cfg;
  cfg.workers = workers;
  cfg.slice_seconds = 0.005;
  JobManager jm(cfg);
  jm.start();

  std::vector<std::uint64_t> ids;
  ProtocolError err;
  for (const std::string& profile : profiles) {
    SubmitRequest req;
    req.profile = profile;
    req.name = profile;
    req.config.seed = 11;
    req.budget.max_evaluations = max_evals;
    const std::uint64_t id = jm.submit(req, err);
    ASSERT_NE(id, 0u) << err.message;
    ids.push_back(id);
  }
  wait_all_terminal(jm, ids.size());

  for (std::size_t i = 0; i < ids.size(); ++i) {
    JobSnapshot snap;
    std::vector<std::string> vectors;
    ASSERT_TRUE(jm.result(ids[i], snap, vectors, err)) << err.message;
    EXPECT_EQ(snap.state, JobState::Done);
    EXPECT_EQ(vectors, direct_run(profiles[i], 11, max_evals))
        << profiles[i] << " with " << workers << " workers, " << snap.slices
        << " slices";
  }
  jm.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Workers, SliceIdentity, ::testing::Values(1u, 4u));

// ---- scheduler lifecycle ----------------------------------------------------

TEST(Scheduler, CancelQueuedAndRunningJobs) {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.slice_seconds = 0.02;
  JobManager jm(cfg);
  jm.start();

  ProtocolError err;
  // An effectively unbounded job occupies the single worker...
  SubmitRequest big;
  big.profile = "s298";
  big.budget.max_evaluations = 100000000;
  const std::uint64_t running = jm.submit(big, err);
  ASSERT_NE(running, 0u);
  // ...so this one stays queued and cancels instantly.
  const std::uint64_t queued = jm.submit(big, err);
  ASSERT_NE(queued, 0u);

  EXPECT_TRUE(jm.cancel(queued, err));
  EXPECT_TRUE(jm.cancel(running, err));
  wait_all_terminal(jm, 2);
  JobSnapshot snap;
  ASSERT_TRUE(jm.snapshot(queued, snap, err));
  EXPECT_EQ(snap.state, JobState::Cancelled);
  ASSERT_TRUE(jm.snapshot(running, snap, err));
  EXPECT_EQ(snap.state, JobState::Cancelled);

  EXPECT_FALSE(jm.cancel(999, err));
  EXPECT_EQ(err.code, "unknown-job");
  std::vector<std::string> vectors;
  EXPECT_FALSE(jm.result(999, snap, vectors, err));
  EXPECT_EQ(err.code, "unknown-job");
  jm.shutdown();
}

TEST(Scheduler, ResultBeforeTerminalIsNotDone) {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.slice_seconds = 0.02;
  JobManager jm(cfg);
  jm.start();
  ProtocolError err;
  SubmitRequest big;
  big.profile = "s298";
  big.budget.max_evaluations = 100000000;
  const std::uint64_t id = jm.submit(big, err);
  ASSERT_NE(id, 0u);
  JobSnapshot snap;
  std::vector<std::string> vectors;
  EXPECT_FALSE(jm.result(id, snap, vectors, err));
  EXPECT_EQ(err.code, "not-done");
  jm.cancel(id, err);
  jm.shutdown();
}

TEST(Scheduler, WatchStreamsLifecycleAndGeneratorEvents) {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.slice_seconds = 0.0;  // run to completion
  JobManager jm(cfg);
  jm.start();
  ProtocolError err;

  auto all = jm.watch(false, 0, err);
  ASSERT_TRUE(all);

  SubmitRequest req;
  req.profile = "s27";
  req.budget.max_evaluations = 300;
  const std::uint64_t id = jm.submit(req, err);
  ASSERT_NE(id, 0u);
  wait_all_terminal(jm, 1);

  bool saw_submit = false, saw_done = false;
  std::string line;
  while (all->pop(line, 0.2)) {
    const telemetry::JsonValue v = telemetry::parse_json(line);
    EXPECT_EQ(static_cast<std::uint64_t>(v.number_or("job", 0)), id);
    const std::string type = v.string_or("type", "");
    if (type == "job_submit") saw_submit = true;
    if (type == "job_done") {
      saw_done = true;
      EXPECT_EQ(v.string_or("state", ""), "done");
      break;
    }
  }
  EXPECT_TRUE(saw_submit);
  EXPECT_TRUE(saw_done);
  jm.unsubscribe(all);

  // Watching an unknown job fails; watching a terminal one yields a closed
  // stream.
  EXPECT_FALSE(jm.watch(true, 999, err));
  EXPECT_EQ(err.code, "unknown-job");
  auto done_watch = jm.watch(true, id, err);
  ASSERT_TRUE(done_watch);
  EXPECT_FALSE(done_watch->pop(line, 0.05));
  EXPECT_TRUE(done_watch->closed_and_drained());
  jm.shutdown();
}

TEST(Scheduler, MetricsReportServerGauges) {
  ServeConfig cfg;
  cfg.workers = 2;
  JobManager jm(cfg);
  jm.start();
  ProtocolError err;
  SubmitRequest req;
  req.profile = "s27";
  req.budget.max_evaluations = 200;
  ASSERT_NE(jm.submit(req, err), 0u);
  wait_all_terminal(jm, 1);
  const telemetry::JsonValue m = telemetry::parse_json(jm.metrics_json());
  ASSERT_TRUE(m.find("counters"));
  EXPECT_EQ(m.find("counters")->number_or("serve.jobs_submitted", 0), 1.0);
  EXPECT_EQ(m.find("counters")->number_or("serve.jobs_done", 0), 1.0);
  ASSERT_TRUE(m.find("gauges"));
  EXPECT_EQ(m.find("gauges")->number_or("serve.workers", 0), 2.0);
  jm.shutdown();
}

// ---- socket end-to-end ------------------------------------------------------

TEST(Server, EndToEndOverTcp) {
  ServerConfig cfg;
  cfg.serve.workers = 1;
  cfg.serve.slice_seconds = 0.02;
  Server server(cfg);
  server.start();
  ASSERT_GT(server.port(), 0);
  std::thread runner([&server] { server.run(); });

  TcpConnection conn = tcp_connect("127.0.0.1", server.port());
  ASSERT_TRUE(conn.valid());
  auto rpc = [&conn](const std::string& req) {
    EXPECT_TRUE(conn.write_all(req + "\n"));
    std::string line;
    EXPECT_EQ(conn.read_line(line, kMaxRequestBytes),
              TcpConnection::ReadStatus::Ok);
    return telemetry::parse_json(line);
  };

  // Malformed input gets a structured error, not a dropped connection.
  EXPECT_EQ(rpc("{oops").find("error")->string_or("code", ""), "bad-json");

  const telemetry::JsonValue sub = rpc(
      "{\"cmd\":\"submit\",\"profile\":\"s27\","
      "\"config\":{\"seed\":5},\"budget\":{\"max_evals\":300}}");
  ASSERT_TRUE(sub.find("ok") && sub.find("ok")->boolean);
  const auto id = static_cast<std::uint64_t>(sub.number_or("id", 0));
  ASSERT_GT(id, 0u);

  std::string state;
  for (int i = 0; i < 2000 && state != "done"; ++i) {
    const telemetry::JsonValue st =
        rpc("{\"cmd\":\"status\",\"id\":" + std::to_string(id) + "}");
    state = st.find("job") ? st.find("job")->string_or("state", "") : "";
    if (state != "done")
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(state, "done");

  const telemetry::JsonValue res =
      rpc("{\"cmd\":\"result\",\"id\":" + std::to_string(id) + "}");
  ASSERT_TRUE(res.find("ok") && res.find("ok")->boolean);
  ASSERT_TRUE(res.find("vectors"));
  EXPECT_FALSE(res.find("vectors")->array.empty());

  const telemetry::JsonValue met = rpc("{\"cmd\":\"metrics\"}");
  ASSERT_TRUE(met.find("metrics"));
  EXPECT_GE(met.find("metrics")->find("counters")->number_or(
                "serve.requests", 0),
            4.0);

  const telemetry::JsonValue bye = rpc("{\"cmd\":\"shutdown\"}");
  EXPECT_TRUE(bye.find("ok") && bye.find("ok")->boolean);
  runner.join();
}

}  // namespace
}  // namespace gatest::serve
