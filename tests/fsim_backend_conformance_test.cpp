// Backend conformance suite: every engine registered in the fault-sim
// backend registry (fsim/backend.h) is run through the same parameterized
// contract checks against the event-driven reference.  The contract is
// bit-identity on every observable — per-frame detections, fault effects at
// flip-flops, good/faulty event counts, flip-flop states — plus identical
// snapshot/restore, fault-status export/import, state-epoch, pruning, and
// lane-compaction semantics.  A new engine only has to register itself to be
// picked up here.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/untestable.h"
#include "circuitgen/circuitgen.h"
#include "fault/fault.h"
#include "fsim/backend.h"
#include "fsim/fault_sim.h"
#include "fsim/levelized_sim.h"
#include "netlist/circuit.h"
#include "sim/logic.h"
#include "util/rng.h"

namespace gatest {
namespace {

TestVector random_vector(const Circuit& c, Rng& rng) {
  TestVector v(c.num_inputs());
  for (Logic& b : v) b = rng.coin() ? Logic::One : Logic::Zero;
  return v;
}

void expect_stats_equal(const FaultSimStats& got, const FaultSimStats& want,
                        const std::string& ctx) {
  EXPECT_EQ(got.detected, want.detected) << ctx;
  EXPECT_EQ(got.fault_effects_at_ffs, want.fault_effects_at_ffs) << ctx;
  EXPECT_EQ(got.good_events, want.good_events) << ctx;
  EXPECT_EQ(got.faulty_events, want.faulty_events) << ctx;
  EXPECT_EQ(got.ffs_set, want.ffs_set) << ctx;
  EXPECT_EQ(got.ffs_changed, want.ffs_changed) << ctx;
  EXPECT_EQ(got.faults_simulated, want.faults_simulated) << ctx;
}

// ---- registry ---------------------------------------------------------------

TEST(FsimBackendRegistry, ListsEventFirstAndKnowsEveryName) {
  const auto& names = fault_sim_backend_names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names.front(), "event");
  for (const std::string& n : names) EXPECT_TRUE(fault_sim_backend_known(n));
  EXPECT_FALSE(fault_sim_backend_known("no-such-engine"));
}

TEST(FsimBackendRegistry, ConstructsEveryNameAndRejectsUnknown) {
  const Circuit c = make_s27();
  for (const std::string& n : fault_sim_backend_names()) {
    FaultList fl(c);
    auto sim = make_fault_sim_backend(n, c, fl);
    ASSERT_NE(sim, nullptr);
    EXPECT_EQ(sim->backend_name(), n);
    EXPECT_GE(sim->lane_width(), 64u);
    EXPECT_EQ(sim->counters().lane_width, sim->lane_width());
  }
  FaultList fl(c);
  EXPECT_THROW(make_fault_sim_backend("no-such-engine", c, fl),
               std::invalid_argument);
  // Empty name means the default engine.
  EXPECT_EQ(std::string(make_fault_sim_backend("", c, fl)->backend_name()),
            "event");
}

TEST(FsimBackendRegistry, ForcedPortableDispatchIsNeverAvx2) {
  const Circuit c = make_s27();
  ::setenv("GATEST_FSIM_FORCE_PORTABLE", "1", 1);
  FaultList fl(c);
  LevelizedFaultSimulator sim(c, fl);
  ::unsetenv("GATEST_FSIM_FORCE_PORTABLE");
  EXPECT_FALSE(sim.using_avx2());
}

// ---- parameterized conformance ----------------------------------------------

class BackendConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<FaultSimBackend> make(const Circuit& c,
                                        FaultList& fl) const {
    return make_fault_sim_backend(GetParam(), c, fl);
  }
};

TEST_P(BackendConformanceTest, PerFrameObservablesMatchEventReference) {
  const Circuit c = benchmark_circuit("s298", 3);
  FaultList ref_fl(c);
  SequentialFaultSimulator ref(c, ref_fl);
  FaultList fl(c);
  auto sim = make(c, fl);

  Rng rng(71);
  for (int t = 0; t < 30; ++t) {
    const TestVector v = random_vector(c, rng);
    const FaultSimStats want = ref.apply_vector(v, t);
    const FaultSimStats got = sim->apply_vector(v, t);
    expect_stats_equal(got, want,
                       GetParam() + " frame " + std::to_string(t));
    ASSERT_EQ(sim->good_ff_state(), ref.good_ff_state());
    ASSERT_EQ(sim->good_ffs_set(), ref.good_ffs_set());
  }
  for (std::size_t f = 0; f < fl.size(); ++f) {
    ASSERT_EQ(fl.status(f), ref_fl.status(f)) << fault_name(c, fl.fault(f));
    ASSERT_EQ(fl.detected_by(f), ref_fl.detected_by(f))
        << fault_name(c, fl.fault(f));
  }
}

TEST_P(BackendConformanceTest, TransitionFaultsMatchEventReference) {
  const Circuit c = benchmark_circuit("s344", 5);
  const std::vector<Fault> tf = enumerate_transition_faults(c);
  FaultList ref_fl(c, tf);
  SequentialFaultSimulator ref(c, ref_fl);
  FaultList fl(c, tf);
  auto sim = make(c, fl);

  Rng rng(73);
  for (int t = 0; t < 25; ++t) {
    const TestVector v = random_vector(c, rng);
    const FaultSimStats want = ref.apply_vector(v, t);
    const FaultSimStats got = sim->apply_vector(v, t);
    expect_stats_equal(got, want,
                       GetParam() + " frame " + std::to_string(t));
  }
  for (std::size_t f = 0; f < fl.size(); ++f)
    ASSERT_EQ(fl.status(f), ref_fl.status(f)) << fault_name(c, fl.fault(f));
}

TEST_P(BackendConformanceTest, EvaluateMatchesApplyAndDoesNotMutate) {
  const Circuit c = benchmark_circuit("s298", 3);
  FaultList fl(c);
  auto sim = make(c, fl);
  Rng rng(79);
  for (int i = 0; i < 5; ++i) sim->apply_vector(random_vector(c, rng), i);

  const auto state = sim->good_ff_state();
  const std::size_t det = fl.num_detected();
  const std::uint64_t epoch = sim->state_epoch();

  const TestVector v = random_vector(c, rng);
  const FaultSimStats ev = sim->evaluate_vector(v);
  // Evaluation leaves committed state, bookkeeping, and the epoch alone.
  EXPECT_EQ(sim->good_ff_state(), state);
  EXPECT_EQ(fl.num_detected(), det);
  EXPECT_EQ(sim->state_epoch(), epoch);
  const FaultSimStats ap = sim->apply_vector(v, 100);
  expect_stats_equal(ev, ap, GetParam() + " evaluate-vs-apply");
}

TEST_P(BackendConformanceTest, EvaluateSequenceMatchesSequentialApplies) {
  const Circuit c = benchmark_circuit("s298", 3);
  FaultList fl(c);
  auto sim = make(c, fl);
  Rng rng(83);
  for (int i = 0; i < 5; ++i) sim->apply_vector(random_vector(c, rng), i);

  TestSequence seq;
  for (int j = 0; j < 6; ++j) seq.push_back(random_vector(c, rng));
  const FaultSimStats ev = sim->evaluate_sequence(seq);
  const auto snap = sim->snapshot();
  const FaultSimStats ap = sim->apply_sequence(seq, 100);
  EXPECT_EQ(ev.detected, ap.detected);
  EXPECT_EQ(ev.fault_effects_at_ffs, ap.fault_effects_at_ffs);
  EXPECT_EQ(ev.faulty_events, ap.faulty_events);
  sim->restore(snap);
}

TEST_P(BackendConformanceTest, FaultSamplingRestrictsSimulation) {
  const Circuit c = benchmark_circuit("s298", 3);
  FaultList fl(c);
  auto sim = make(c, fl);
  Rng rng(89);
  const TestVector v = random_vector(c, rng);
  std::vector<std::uint32_t> sample;
  for (std::uint32_t i = 0; i < 50; ++i) sample.push_back(i);
  const FaultSimStats s = sim->evaluate_vector(v, sample);
  EXPECT_LE(s.faults_simulated, 50u);
  EXPECT_LE(s.detected, 50u);
}

TEST_P(BackendConformanceTest, SnapshotRestoreRoundTrip) {
  const Circuit c = benchmark_circuit("s298", 3);
  FaultList fl(c);
  auto sim = make(c, fl);
  Rng rng(97);
  for (int i = 0; i < 8; ++i) sim->apply_vector(random_vector(c, rng), i);

  const FaultSimSnapshot snap = sim->snapshot();
  const auto state = sim->good_ff_state();
  const std::size_t det = fl.num_detected();

  for (int i = 0; i < 8; ++i)
    sim->apply_vector(random_vector(c, rng), 100 + i);
  sim->restore(snap);
  EXPECT_EQ(sim->good_ff_state(), state);
  EXPECT_EQ(fl.num_detected(), det);

  // Determinism after restore: same vector, same observables.
  Rng rng2(101);
  const TestVector v = random_vector(c, rng2);
  const FaultSimStats s1 = sim->apply_vector(v, 200);
  sim->restore(snap);
  const FaultSimStats s2 = sim->apply_vector(v, 200);
  expect_stats_equal(s1, s2, GetParam() + " restore determinism");
}

TEST_P(BackendConformanceTest, SnapshotsAreEngineIndependent) {
  // A snapshot taken from the event reference restores into any backend and
  // the machines evolve identically afterwards.
  const Circuit c = benchmark_circuit("s298", 3);
  FaultList ref_fl(c);
  SequentialFaultSimulator ref(c, ref_fl);
  Rng rng(103);
  for (int i = 0; i < 8; ++i) ref.apply_vector(random_vector(c, rng), i);
  const FaultSimSnapshot snap = ref.snapshot();

  FaultList fl(c);
  auto sim = make(c, fl);
  sim->restore(snap);
  EXPECT_EQ(sim->good_ff_state(), ref.good_ff_state());
  for (int t = 0; t < 10; ++t) {
    const TestVector v = random_vector(c, rng);
    const FaultSimStats want = ref.apply_vector(v, 100 + t);
    const FaultSimStats got = sim->apply_vector(v, 100 + t);
    expect_stats_equal(got, want,
                       GetParam() + " post-restore frame " + std::to_string(t));
  }
}

TEST_P(BackendConformanceTest, StateEpochBumpSemantics) {
  const Circuit c = make_s27();
  FaultList fl(c);
  auto sim = make(c, fl);
  std::uint64_t e = sim->state_epoch();

  sim->apply_vector(logic_vector("0101"), 0);
  EXPECT_GT(sim->state_epoch(), e);
  e = sim->state_epoch();

  // Evaluation must never bump the epoch (memoized fitness stays valid).
  sim->evaluate_vector(logic_vector("1010"));
  sim->evaluate_vector_good_only(logic_vector("1111"));
  EXPECT_EQ(sim->state_epoch(), e);

  const FaultSimSnapshot snap = sim->snapshot();
  EXPECT_EQ(sim->state_epoch(), e);  // snapshotting is read-only
  sim->restore(snap);
  EXPECT_GT(sim->state_epoch(), e);
  e = sim->state_epoch();

  std::vector<FaultStatus> status;
  std::vector<std::int64_t> detected_by;
  sim->export_fault_status(status, detected_by);
  EXPECT_EQ(sim->state_epoch(), e);  // export is read-only
  sim->import_fault_status(status, detected_by);
  EXPECT_GT(sim->state_epoch(), e);
  e = sim->state_epoch();

  sim->reset();
  EXPECT_GT(sim->state_epoch(), e);
  e = sim->state_epoch();

  TestSequence seq = {logic_vector("0000"), logic_vector("1111")};
  sim->replay_committed(seq);
  EXPECT_GT(sim->state_epoch(), e);
}

TEST_P(BackendConformanceTest, FaultStatusExportImportRoundTrip) {
  const Circuit c = benchmark_circuit("s298", 3);
  FaultList fl(c);
  auto sim = make(c, fl);
  Rng rng(107);
  TestSequence committed;
  for (int i = 0; i < 10; ++i) {
    committed.push_back(random_vector(c, rng));
    sim->apply_vector(committed.back(), i);
  }

  std::vector<FaultStatus> status;
  std::vector<std::int64_t> detected_by;
  sim->export_fault_status(status, detected_by);
  const std::size_t det = fl.num_detected();
  ASSERT_GT(det, 0u);

  // Wipe and restore via replay + import (the run-control resume path).
  const FaultSimStats replayed = sim->replay_committed(committed);
  EXPECT_EQ(fl.num_detected(), det);
  (void)replayed;
  sim->import_fault_status(status, detected_by);
  EXPECT_EQ(fl.num_detected(), det);
  for (std::size_t f = 0; f < fl.size(); ++f) {
    EXPECT_EQ(fl.status(f), status[f]);
    EXPECT_EQ(fl.detected_by(f), detected_by[f]);
  }
}

TEST_P(BackendConformanceTest, ProvenPruningLeavesObservablesIdentical) {
  // The implication prover's pruned universe (--prune-untestable /
  // --prune-proven) must not change any observable on any backend: pruned
  // faults are counted back into faults_simulated and never simulated.
  const Circuit c = benchmark_circuit("s344", 5);
  FaultList plain_fl(c);
  auto plain = make(c, plain_fl);
  const std::vector<analysis::FaultProof> proofs =
      analysis::prove_untestable(c, plain_fl.faults());
  FaultList pruned_fl(c);
  analysis::apply_proven_pruning(pruned_fl, proofs);
  auto pruned = make(c, pruned_fl);

  Rng rng(109);
  for (int t = 0; t < 20; ++t) {
    const TestVector v = random_vector(c, rng);
    const FaultSimStats a = plain->apply_vector(v, t);
    const FaultSimStats b = pruned->apply_vector(v, t);
    expect_stats_equal(b, a, GetParam() + " pruned frame " + std::to_string(t));
  }
  for (std::size_t f = 0; f < plain_fl.size(); ++f)
    ASSERT_EQ(pruned_fl.status(f) == FaultStatus::Detected,
              plain_fl.status(f) == FaultStatus::Detected)
        << fault_name(c, plain_fl.fault(f));
}

TEST_P(BackendConformanceTest, LaneCompactionChangesNoObservable) {
  const Circuit c = benchmark_circuit("s298", 3);
  FaultList plain_fl(c);
  auto plain = make(c, plain_fl);
  FaultList packed_fl(c);
  auto packed = make(c, packed_fl);
  LaneCompactionPolicy aggressive;
  aggressive.occupancy_threshold = 1.0;
  aggressive.min_commits = 1;
  packed->set_lane_compaction(true, aggressive);
  EXPECT_TRUE(packed->lane_compaction_enabled());
  EXPECT_FALSE(plain->lane_compaction_enabled());

  Rng rng(113);
  for (int t = 0; t < 20; ++t) {
    const TestVector v = random_vector(c, rng);
    const FaultSimStats a = plain->apply_vector(v, t);
    const FaultSimStats b = packed->apply_vector(v, t);
    expect_stats_equal(b, a,
                       GetParam() + " compacted frame " + std::to_string(t));
  }
  for (std::size_t f = 0; f < plain_fl.size(); ++f)
    ASSERT_EQ(packed_fl.status(f), plain_fl.status(f))
        << fault_name(c, plain_fl.fault(f));
  EXPECT_GT(packed->counters().lane_compactions, 0u);
}

TEST_P(BackendConformanceTest, CountersTrackWorkAndReset) {
  const Circuit c = benchmark_circuit("s298", 3);
  FaultList fl(c);
  auto sim = make(c, fl);
  Rng rng(127);
  for (int i = 0; i < 4; ++i) sim->apply_vector(random_vector(c, rng), i);
  sim->evaluate_vector(random_vector(c, rng));

  const FsimCounters& fc = sim->counters();
  EXPECT_EQ(fc.vectors_committed, 4u);
  EXPECT_EQ(fc.candidate_evaluations, 1u);
  EXPECT_EQ(fc.frames_simulated, 5u);
  EXPECT_GT(fc.fault_groups, 0u);
  EXPECT_GT(fc.fault_group_lanes, 0u);
  EXPECT_EQ(fc.lane_width, sim->lane_width());
  EXPECT_GT(fc.packed_utilization(), 0.0);
  EXPECT_LE(fc.packed_utilization(), 1.0);

  sim->reset_counters();
  EXPECT_EQ(sim->counters().vectors_committed, 0u);
  EXPECT_EQ(sim->counters().fault_groups, 0u);
  EXPECT_EQ(sim->counters().lane_width, sim->lane_width());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendConformanceTest,
    ::testing::ValuesIn(fault_sim_backend_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace gatest
