#include <gtest/gtest.h>

#include <algorithm>

#include "circuitgen/circuitgen.h"
#include "diagnosis/diagnosis.h"
#include "fault/fault.h"
#include "fsim/fault_sim.h"
#include "gatest/test_generator.h"
#include "util/rng.h"

namespace gatest {
namespace {

std::vector<TestVector> random_tests(const Circuit& c, int n, std::uint64_t s) {
  Rng rng(s);
  std::vector<TestVector> out;
  for (int i = 0; i < n; ++i) {
    TestVector v(c.num_inputs());
    for (Logic& b : v) b = rng.coin() ? Logic::One : Logic::Zero;
    out.push_back(std::move(v));
  }
  return out;
}

TEST(Diagnosis, SignatureMatchesFaultSimulatorDetections) {
  // A fault's dictionary signature is nonempty exactly when the fault
  // simulator detects it on the same test set, and the first failing vector
  // agrees with detected_by.
  const Circuit c = make_s27();
  FaultList fl(c);
  const auto tests = random_tests(c, 30, 5);
  FaultDictionary dict(c, fl.faults(), tests);

  SequentialFaultSimulator sim(c, fl);
  for (std::size_t i = 0; i < tests.size(); ++i)
    sim.apply_vector(tests[i], static_cast<std::int64_t>(i));

  for (std::size_t i = 0; i < fl.size(); ++i) {
    const bool detected = fl.status(i) == FaultStatus::Detected;
    EXPECT_EQ(!dict.signature(i).empty(), detected)
        << fault_name(c, fl.fault(i));
    if (detected) {
      EXPECT_EQ(static_cast<std::int64_t>(dict.signature(i).front().first),
                fl.detected_by(i))
          << fault_name(c, fl.fault(i));
    }
  }
}

TEST(Diagnosis, ObservedFaultRanksFirst) {
  // Injecting a dictionary fault and diagnosing its own signature must rank
  // it (or an indistinguishable equivalent) at the top with score 1.
  const Circuit c = make_s27();
  FaultList fl(c);
  const auto tests = random_tests(c, 40, 7);
  FaultDictionary dict(c, fl.faults(), tests);

  unsigned diagnosed = 0;
  for (std::uint32_t i = 0; i < dict.num_faults(); ++i) {
    if (dict.signature(i).empty()) continue;
    const auto candidates = dict.diagnose(dict.signature(i), 5);
    ASSERT_FALSE(candidates.empty());
    EXPECT_DOUBLE_EQ(candidates.front().score, 1.0);
    // The top-scoring group must contain fault i.
    bool found = false;
    for (const auto& cand : candidates)
      if (cand.score == 1.0 && cand.fault_index == i) found = true;
    // i might be ranked below top_k if many faults share the signature;
    // check signature equality instead in that case.
    if (!found) {
      EXPECT_EQ(dict.signature(candidates.front().fault_index),
                dict.signature(i));
    }
    ++diagnosed;
  }
  EXPECT_GT(diagnosed, 20u);
}

TEST(Diagnosis, EmptyObservationYieldsNoCandidates) {
  const Circuit c = make_s27();
  FaultList fl(c);
  FaultDictionary dict(c, fl.faults(), random_tests(c, 10, 9));
  EXPECT_TRUE(dict.diagnose({}).empty());
}

TEST(Diagnosis, ResolutionMetricsAreConsistent) {
  const Circuit c = make_s27();
  FaultList fl(c);
  FaultDictionary dict(c, fl.faults(), random_tests(c, 50, 11));
  const std::size_t classes = dict.num_distinguishable_classes();
  EXPECT_GT(classes, 0u);
  EXPECT_LE(classes, dict.num_faults());
  const double res = dict.diagnostic_resolution();
  EXPECT_GE(res, 0.0);
  EXPECT_LE(res, 1.0);
}

TEST(Diagnosis, BetterTestSetsImproveResolution) {
  // A longer test set can only refine signatures (prefix signatures are
  // subsets), so the class count must not drop.
  const Circuit c = make_s27();
  FaultList fl(c);
  const auto tests50 = random_tests(c, 50, 13);
  auto tests10 = tests50;
  tests10.resize(10);
  FaultDictionary small(c, fl.faults(), tests10);
  FaultDictionary big(c, fl.faults(), tests50);
  EXPECT_GE(big.num_distinguishable_classes(),
            small.num_distinguishable_classes());
}

TEST(Diagnosis, NoisyObservationStillFindsNeighborhood) {
  // Drop one failing position from an observed signature: the injected
  // fault should still appear among the candidates (score < 1).
  const Circuit c = make_s27();
  FaultList fl(c);
  FaultDictionary dict(c, fl.faults(), random_tests(c, 40, 17));
  for (std::uint32_t i = 0; i < dict.num_faults(); ++i) {
    Signature sig = dict.signature(i);
    if (sig.size() < 3) continue;
    sig.pop_back();
    const auto candidates = dict.diagnose(sig, dict.num_faults());
    const bool present =
        std::any_of(candidates.begin(), candidates.end(),
                    [&](const auto& cand) { return cand.fault_index == i; });
    EXPECT_TRUE(present);
    break;
  }
}

TEST(Diagnosis, WorksWithGatestTestSets) {
  const Circuit c = benchmark_circuit("s298", 3);
  FaultList fl(c);
  TestGenConfig cfg;
  cfg.seed = 19;
  GaTestGenerator gen(c, fl, cfg);
  const TestGenResult res = gen.run();

  FaultList fresh(c);
  FaultDictionary dict(c, fresh.faults(), res.test_set);
  // Every fault GATEST detected has a nonempty signature.
  std::size_t nonempty = 0;
  for (std::uint32_t i = 0; i < dict.num_faults(); ++i)
    if (!dict.signature(i).empty()) ++nonempty;
  EXPECT_EQ(nonempty, res.faults_detected);
  EXPECT_GT(dict.diagnostic_resolution(), 0.3);
}

TEST(Diagnosis, TransitionSignaturesMatchFaultSimulator) {
  // The dictionary's scalar per-fault simulation and the PROOFS-style
  // packed simulator are independent implementations of the transition
  // model; their detection verdicts and first-failing vectors must agree.
  for (const char* name : {"s27", "s298"}) {
    const Circuit c = benchmark_circuit(name);
    const std::vector<Fault> tf = enumerate_transition_faults(c);
    const auto tests = random_tests(c, 30, 29);
    FaultDictionary dict(c, tf, tests);

    FaultList fl(c, tf);
    SequentialFaultSimulator sim(c, fl);
    for (std::size_t i = 0; i < tests.size(); ++i)
      sim.apply_vector(tests[i], static_cast<std::int64_t>(i));

    for (std::size_t i = 0; i < fl.size(); ++i) {
      const bool detected = fl.status(i) == FaultStatus::Detected;
      ASSERT_EQ(!dict.signature(i).empty(), detected)
          << name << ": " << fault_name(c, fl.fault(i));
      if (detected) {
        EXPECT_EQ(static_cast<std::int64_t>(dict.signature(i).front().first),
                  fl.detected_by(i))
            << name << ": " << fault_name(c, fl.fault(i));
      }
    }
  }
}

TEST(Diagnosis, TransitionFaultSignatures) {
  const Circuit c = make_s27();
  const std::vector<Fault> tf = enumerate_transition_faults(c);
  FaultDictionary dict(c, tf, random_tests(c, 60, 23));
  std::size_t nonempty = 0;
  for (std::uint32_t i = 0; i < dict.num_faults(); ++i)
    if (!dict.signature(i).empty()) ++nonempty;
  EXPECT_GT(nonempty, tf.size() / 4);
}

}  // namespace
}  // namespace gatest
