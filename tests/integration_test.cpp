// Cross-module integration tests: the full GATEST flow against the baselines
// and the experiment harness, checking the paper's qualitative claims on the
// synthetic ISCAS89-profile substrate.
#include <gtest/gtest.h>

#include "atpg/cris_lite.h"
#include "atpg/random_tpg.h"
#include "circuitgen/circuitgen.h"
#include "experiments/harness.h"
#include "fault/fault.h"
#include "fsim/fault_sim.h"
#include "gatest/compaction.h"
#include "gatest/test_generator.h"
#include "netlist/scan.h"
#include "util/rng.h"

namespace gatest {
namespace {

TEST(Harness, CircuitSetsAreSubsets) {
  for (const std::string& name : default_circuit_set())
    EXPECT_NO_THROW(cached_circuit(name));
  EXPECT_EQ(full_circuit_set().size(), 19u);
}

TEST(Harness, PaperConfigSpecialCases) {
  const TestGenConfig big = paper_config_for("s5378");
  EXPECT_DOUBLE_EQ(big.progress_limit_multiplier, 1.0);
  EXPECT_EQ(big.seq_length_multipliers, (std::vector<double>{0.25, 0.5, 1.0}));
  const TestGenConfig normal = paper_config_for("s298");
  EXPECT_DOUBLE_EQ(normal.progress_limit_multiplier, 4.0);
  EXPECT_EQ(normal.seq_length_multipliers, (std::vector<double>{1.0, 2.0, 4.0}));
}

TEST(Harness, CachedCircuitIsStable) {
  const Circuit& a = cached_circuit("s298");
  const Circuit& b = cached_circuit("s298");
  EXPECT_EQ(&a, &b);
}

TEST(Harness, RepeatedRunsAggregate) {
  const RunSummary s =
      run_gatest_repeated("s27", paper_config_for("s27"), 3, 500);
  EXPECT_EQ(s.detected.count(), 3u);
  EXPECT_EQ(s.faults_total, 32u);
  EXPECT_DOUBLE_EQ(s.detected.mean(), 32.0);  // s27 always reaches full cover
  EXPECT_GT(s.vectors.mean(), 0.0);
}

TEST(Harness, ArgParsing) {
  const char* argv[] = {"bench", "--runs=5", "--seed=9",
                        "--circuits=s27,s298"};
  const BenchArgs args = parse_bench_args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.runs, 5u);
  EXPECT_EQ(args.seed, 9u);
  EXPECT_EQ(args.circuits, (std::vector<std::string>{"s27", "s298"}));
  EXPECT_EQ(args.pick_circuits(default_circuit_set(), full_circuit_set()),
            args.circuits);

  const char* argv2[] = {"bench", "--full"};
  const BenchArgs full = parse_bench_args(2, const_cast<char**>(argv2));
  EXPECT_TRUE(full.full);
  EXPECT_EQ(full.runs, 10u);
  EXPECT_EQ(full.pick_circuits(default_circuit_set(), full_circuit_set()),
            full_circuit_set());
}

// ---- the paper's qualitative claims -------------------------------------------

TEST(PaperClaims, GaTestSetMuchShorterThanRandomAtSimilarCoverage) {
  // §V: GATEST's test sets are far more compact than undirected generation
  // (one third of CRIS, 42% of HITEC); random vectors are the extreme case.
  const Circuit& c = cached_circuit("s298");

  FaultList f_ga(c);
  TestGenConfig cfg = paper_config_for("s298");
  cfg.seed = 71;
  GaTestGenerator gen(c, f_ga, cfg);
  const TestGenResult ga = gen.run();

  FaultList f_rnd(c);
  RandomTpgConfig rcfg;
  rcfg.seed = 71;
  rcfg.no_progress_limit = 256;
  const TestGenResult rnd = run_random_tpg(c, f_rnd, rcfg);

  EXPECT_GE(ga.faults_detected + 10, rnd.faults_detected);
  EXPECT_LT(ga.test_set.size(), rnd.test_set.size());
}

TEST(PaperClaims, FaultSimFitnessBeatsLogicSimFitness) {
  // §V: GATEST's fault-simulation fitness yields higher coverage than the
  // CRIS-style logic-simulation fitness.
  const Circuit& c = cached_circuit("s386");

  FaultList f_ga(c);
  TestGenConfig cfg = paper_config_for("s386");
  cfg.seed = 73;
  GaTestGenerator gen(c, f_ga, cfg);
  const TestGenResult ga = gen.run();

  FaultList f_cris(c);
  CrisLiteConfig ccfg;
  ccfg.seed = 73;
  const TestGenResult cris = run_cris_lite(c, f_cris, ccfg);

  EXPECT_GT(ga.faults_detected, cris.faults_detected);
}

TEST(PaperClaims, SequencePhaseAddsCoverage) {
  // Figure 1: sequences detect faults that individual vectors miss.  Across
  // the compact circuit set, phase 4 must contribute somewhere.
  std::size_t seq_detections = 0;
  for (const char* name : {"s298", "s526"}) {
    const Circuit& c = cached_circuit(name);
    FaultList faults(c);
    TestGenConfig cfg = paper_config_for(name);
    cfg.seed = 79;
    GaTestGenerator gen(c, faults, cfg);
    seq_detections += gen.run().detected_by_sequences;
  }
  EXPECT_GT(seq_detections, 0u);
}

TEST(PaperClaims, FaultSamplingTradesCoverageForEvaluationCost) {
  // Table 6: small samples cost little coverage; the committed-vector
  // simulation still uses the full list, so results stay valid tests.
  const Circuit& c = cached_circuit("s298");

  FaultList f_full(c);
  TestGenConfig cfg = paper_config_for("s298");
  cfg.seed = 83;
  GaTestGenerator g_full(c, f_full, cfg);
  const TestGenResult full = g_full.run();

  FaultList f_samp(c);
  cfg.fault_sample_size = 100;
  GaTestGenerator g_samp(c, f_samp, cfg);
  const TestGenResult samp = g_samp.run();

  EXPECT_GT(samp.faults_detected, full.faults_detected / 2);
}

/// Full scan can only help: for matched fault sites, anything detectable
/// sequentially is detectable with scan access, never the other way less.
class ScanVsSequentialTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ScanVsSequentialTest, ScanCoverageDominatesSequential) {
  const Circuit& c = cached_circuit(GetParam());
  const Circuit scan = full_scan_version(c);

  // Sequential coverage via the GA.
  FaultList seq_faults(c);
  TestGenConfig cfg = paper_config_for(GetParam());
  cfg.seed = 101;
  GaTestGenerator gen(c, seq_faults, cfg);
  const double seq_cov = gen.run().fault_coverage;

  // Scan coverage via plain random vectors (cheap and strong on
  // combinational logic).
  FaultList scan_faults(scan);
  SequentialFaultSimulator sim(scan, scan_faults);
  Rng rng(202);
  int plateau = 0;
  std::size_t last = 0;
  for (int t = 0; t < 6000 && plateau < 1500; ++t) {
    TestVector v(scan.num_inputs());
    for (Logic& b : v) b = rng.coin() ? Logic::One : Logic::Zero;
    sim.apply_vector(v, t);
    if (scan_faults.num_detected() > last) {
      last = scan_faults.num_detected();
      plateau = 0;
    } else {
      ++plateau;
    }
  }
  // Fault universes differ slightly (collapsing across the flop boundary),
  // so compare coverage with a small tolerance.
  EXPECT_GE(scan_faults.coverage() + 0.05, seq_cov);
}

INSTANTIATE_TEST_SUITE_P(Circuits, ScanVsSequentialTest,
                         ::testing::Values("s298", "s386"));

TEST(Integration, CompactionIsIdempotent) {
  const Circuit& c = cached_circuit("s298");
  Rng rng(7);
  std::vector<TestVector> tests;
  for (int i = 0; i < 150; ++i) {
    TestVector v(c.num_inputs());
    for (Logic& b : v) b = rng.coin() ? Logic::One : Logic::Zero;
    tests.push_back(std::move(v));
  }
  const CompactionResult once = compact_test_set(c, tests);
  const CompactionResult twice = compact_test_set(c, once.test_set);
  // Removing vectors changes later machine state, so a compacted set may
  // detect *more* than the original (never fewer — that is the guarantee).
  EXPECT_GE(twice.detections, once.detections);
  // The second pass may shave a few more vectors (different block
  // alignment) but must not grow the set.
  EXPECT_LE(twice.compacted_length, once.compacted_length);
}

TEST(Integration, GatestPlusCompactionKeepsReplayInvariant) {
  const Circuit& c = cached_circuit("s386");
  FaultList faults(c);
  TestGenConfig cfg = paper_config_for("s386");
  cfg.seed = 303;
  GaTestGenerator gen(c, faults, cfg);
  const TestGenResult res = gen.run();
  const CompactionResult comp = compact_test_set(c, res.test_set);

  FaultList replay(c);
  SequentialFaultSimulator sim(c, replay);
  for (std::size_t i = 0; i < comp.test_set.size(); ++i)
    sim.apply_vector(comp.test_set[i], static_cast<std::int64_t>(i));
  EXPECT_EQ(replay.num_detected(), res.faults_detected);
}

TEST(Integration, StateCarriesAcrossGeneratorRuns) {
  // A second generator over the remaining faults must not regress the
  // fault list (supports multi-pass flows: GA first, deterministic later).
  const Circuit& c = cached_circuit("s386");
  FaultList faults(c);
  TestGenConfig cfg = paper_config_for("s386");
  cfg.seed = 89;
  cfg.max_vectors = 30;
  GaTestGenerator first(c, faults, cfg);
  const TestGenResult r1 = first.run();

  cfg.max_vectors = 60;
  cfg.seed = 97;
  GaTestGenerator second(c, faults, cfg);
  const TestGenResult r2 = second.run();
  EXPECT_GE(faults.num_detected(), r1.faults_detected);
  EXPECT_EQ(faults.num_detected(), r2.faults_detected);
}

}  // namespace
}  // namespace gatest
