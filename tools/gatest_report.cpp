// gatest_report — summarize a gatest_atpg --trace-out JSONL run trace.
//
// Reads the structured events the telemetry layer emits (run/phase/GA-run/
// generation/commit/checkpoint spans) and prints a per-phase time and
// coverage breakdown, plus overall run facts.  Optionally lists every commit
// with its coverage delta.
//
// Examples:
//   gatest_atpg --profile s344 --engine ga --trace-out run.jsonl
//   gatest_report run.jsonl
//   gatest_report run.jsonl --commits
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "telemetry/json.h"
#include "util/stats.h"
#include "util/table.h"

using namespace gatest;
using telemetry::JsonValue;

namespace {

[[noreturn]] void usage(const char* prog, int code) {
  std::fprintf(stderr,
               "usage: %s TRACE.jsonl [--commits | --spans]\n"
               "\n"
               "  TRACE.jsonl   run trace written by gatest_atpg --trace-out\n"
               "                (or a gatest_serve server trace, for --spans)\n"
               "  --commits     also list every commit with its coverage\n"
               "  --spans       reconstruct the causal span tree and print\n"
               "                each job's critical path instead of the\n"
               "                phase report\n",
               prog);
  std::exit(code);
}

/// Aggregated view of one phase across its (possibly repeated) spans.
struct PhaseTotals {
  double seconds = 0.0;
  std::uint64_t vectors = 0;
  std::uint64_t detected = 0;
  std::uint64_t ga_runs = 0;
  std::uint64_t generations = 0;
  std::size_t first_seen = 0;  // for stable ordering by first appearance
};

struct CommitRow {
  double ts = 0.0;
  std::string phase;
  std::uint64_t index = 0;
  std::uint64_t detected_delta = 0;
  double coverage = 0.0;
};

/// One causal span reconstructed from its open/close trace events.
struct SpanNode {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  double open_ts = 0.0;
  double close_ts = -1.0;  ///< -1 = never closed (interrupted trace)
  std::string type;        ///< type of the opening event
  std::string label;       ///< phase / circuit, when the event names one
  std::uint64_t job = 0;   ///< job id, on job root spans
  std::vector<std::uint64_t> children;

  double seconds() const { return close_ts < 0.0 ? 0.0 : close_ts - open_ts; }
};

/// Spans of one trace id (one job, or the whole run for gatest_atpg traces).
struct SpanTrace {
  std::map<std::uint64_t, SpanNode> spans;
  std::uint64_t root = 0;
};

/// Walk from the root, always descending into the longest child: the chain
/// of spans that bounds the job's wall clock.
void print_critical_path(const SpanTrace& tr) {
  const SpanNode* node = nullptr;
  auto it = tr.spans.find(tr.root);
  if (it == tr.spans.end()) return;
  node = &it->second;
  int depth = 0;
  while (node != nullptr) {
    std::string name = node->type;
    if (!node->label.empty()) name += " [" + node->label + "]";
    std::printf("  %*s%-*s %10.6fs\n", 2 * depth, "",
                std::max(2, 44 - 2 * depth), name.c_str(), node->seconds());
    const SpanNode* widest = nullptr;
    for (std::uint64_t child_id : node->children) {
      const auto cit = tr.spans.find(child_id);
      if (cit == tr.spans.end()) continue;
      if (widest == nullptr || cit->second.seconds() > widest->seconds())
        widest = &cit->second;
    }
    node = widest;
    ++depth;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_file;
  bool list_commits = false, spans_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--commits") list_commits = true;
    else if (a == "--spans") spans_mode = true;
    else if (a == "--help" || a == "-h") usage(argv[0], 0);
    else if (!a.empty() && a[0] == '-') usage(argv[0], 2);
    else if (trace_file.empty()) trace_file = a;
    else usage(argv[0], 2);
  }
  if (trace_file.empty()) usage(argv[0], 2);

  std::ifstream in(trace_file);
  if (!in) {
    std::fprintf(stderr, "gatest_report: cannot open %s\n", trace_file.c_str());
    return 1;
  }

  std::map<std::string, PhaseTotals> phases;
  std::map<std::uint64_t, SpanTrace> traces;  // trace id -> span tree
  std::vector<CommitRow> commits;
  std::string circuit = "?", stop_reason;
  double run_seconds = 0.0, final_coverage = 0.0;
  std::uint64_t final_vectors = 0, final_detected = 0, evaluations = 0;
  std::uint64_t cache_hits = 0, cache_misses = 0;
  std::uint64_t checkpoints = 0;
  bool saw_run_begin = false, saw_run_end = false, resumed = false;

  std::string line;
  std::size_t lineno = 0, events = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue ev;
    try {
      ev = telemetry::parse_json(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gatest_report: %s:%zu: %s\n", trace_file.c_str(),
                   lineno, e.what());
      return 1;
    }
    const std::string type = ev.string_or("type", "");
    if (!ev.is_object() || type.empty() || !ev.find("ts") || !ev.find("tid")) {
      std::fprintf(stderr,
                   "gatest_report: %s:%zu: not a trace event (need ts, tid, "
                   "type)\n",
                   trace_file.c_str(), lineno);
      return 1;
    }
    ++events;

    // Causal span bookkeeping: an open event carries span+parent, a close
    // carries span+span_end (annotations carry span alone — not needed for
    // the critical path).
    if (const JsonValue* span = ev.find("span"); span && span->is_number()) {
      const auto span_id = static_cast<std::uint64_t>(span->number);
      const auto trace_id =
          static_cast<std::uint64_t>(ev.number_or("trace", 0.0));
      SpanTrace& tr = traces[trace_id];
      const JsonValue* end = ev.find("span_end");
      if (end && end->boolean) {
        auto it = tr.spans.find(span_id);
        if (it != tr.spans.end()) it->second.close_ts = ev.number_or("ts", 0.0);
      } else if (const JsonValue* parent = ev.find("parent")) {
        SpanNode& node = tr.spans[span_id];
        node.id = span_id;
        node.parent = static_cast<std::uint64_t>(parent->number);
        node.open_ts = ev.number_or("ts", 0.0);
        node.type = type;
        node.label = ev.string_or("phase", ev.string_or("circuit", ""));
        node.job = static_cast<std::uint64_t>(ev.number_or("job", 0.0));
        if (node.parent == 0) {
          tr.root = span_id;
        } else {
          tr.spans[node.parent].children.push_back(span_id);
        }
      }
    }

    auto phase_slot = [&](const std::string& name) -> PhaseTotals& {
      auto [it, inserted] = phases.try_emplace(name);
      if (inserted) it->second.first_seen = events;
      return it->second;
    };

    if (type == "run_begin") {
      saw_run_begin = true;
      circuit = ev.string_or("circuit", "?");
      resumed = resumed || (ev.find("resumed") && ev.find("resumed")->boolean);
    } else if (type == "run_end") {
      saw_run_end = true;
      run_seconds = ev.number_or("dur_s", 0.0);
      final_coverage = ev.number_or("coverage", 0.0);
      final_vectors = static_cast<std::uint64_t>(ev.number_or("vectors", 0.0));
      final_detected =
          static_cast<std::uint64_t>(ev.number_or("detected", 0.0));
      evaluations =
          static_cast<std::uint64_t>(ev.number_or("evaluations", 0.0));
      cache_hits =
          static_cast<std::uint64_t>(ev.number_or("cache_hits", 0.0));
      cache_misses =
          static_cast<std::uint64_t>(ev.number_or("cache_misses", 0.0));
      stop_reason = ev.string_or("stop_reason", "");
    } else if (type == "phase_end") {
      PhaseTotals& p = phase_slot(ev.string_or("phase", "?"));
      p.seconds += ev.number_or("dur_s", 0.0);
      p.vectors +=
          static_cast<std::uint64_t>(ev.number_or("vectors_delta", 0.0));
      p.detected +=
          static_cast<std::uint64_t>(ev.number_or("detected_delta", 0.0));
    } else if (type == "ga_run_end") {
      ++phase_slot(ev.string_or("phase", "?")).ga_runs;
    } else if (type == "generation") {
      ++phase_slot(ev.string_or("phase", "?")).generations;
    } else if (type == "checkpoint_write") {
      ++checkpoints;
    } else if (type == "resume") {
      resumed = true;
    } else if (type == "commit") {
      CommitRow row;
      row.ts = ev.number_or("ts", 0.0);
      row.phase = ev.string_or("phase", "?");
      row.index = static_cast<std::uint64_t>(ev.number_or("index", 0.0));
      row.detected_delta =
          static_cast<std::uint64_t>(ev.number_or("detected_delta", 0.0));
      row.coverage = ev.number_or("coverage", 0.0);
      commits.push_back(row);
    }
  }

  if (events == 0) {
    std::fprintf(stderr, "gatest_report: %s: no trace events\n",
                 trace_file.c_str());
    return 1;
  }

  if (spans_mode) {
    if (traces.empty()) {
      std::fprintf(stderr,
                   "gatest_report: %s: no causal spans in trace (written by "
                   "an older build?)\n",
                   trace_file.c_str());
      return 1;
    }
    for (const auto& [trace_id, tr] : traces) {
      const auto rit = tr.spans.find(tr.root);
      if (rit == tr.spans.end()) {
        std::printf("trace %llu: %zu span(s), no root — truncated trace?\n",
                    static_cast<unsigned long long>(trace_id),
                    tr.spans.size());
        continue;
      }
      const SpanNode& root = rit->second;
      std::printf("trace %llu", static_cast<unsigned long long>(trace_id));
      if (root.job != 0)
        std::printf(" (job %llu%s%s)",
                    static_cast<unsigned long long>(root.job),
                    root.label.empty() ? "" : ", ",
                    root.label.c_str());
      std::printf(": %zu span(s), %.6fs — critical path:\n", tr.spans.size(),
                  root.seconds());
      print_critical_path(tr);
    }
    return 0;
  }

  if (!saw_run_begin)
    std::fprintf(stderr, "gatest_report: warning: no run_begin event "
                         "(truncated trace?)\n");
  if (!saw_run_end)
    std::fprintf(stderr, "gatest_report: warning: no run_end event — the run "
                         "was interrupted before the trace closed\n");

  std::printf("run: %s — %llu vectors, %llu detected (%.2f%% coverage), "
              "%llu evaluations, %s%s\n",
              circuit.c_str(),
              static_cast<unsigned long long>(final_vectors),
              static_cast<unsigned long long>(final_detected),
              100.0 * final_coverage,
              static_cast<unsigned long long>(evaluations),
              format_duration(run_seconds).c_str(),
              resumed ? " (resumed)" : "");
  if (!stop_reason.empty() && stop_reason != "completed")
    std::printf("stopped early: %s\n", stop_reason.c_str());
  if (cache_hits + cache_misses > 0)
    std::printf("fitness cache: %llu hits / %llu misses (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses),
                100.0 * static_cast<double>(cache_hits) /
                    static_cast<double>(cache_hits + cache_misses));
  if (checkpoints)
    std::printf("checkpoints written: %llu\n",
                static_cast<unsigned long long>(checkpoints));
  std::printf("\n");

  // Order phases by first appearance in the trace, not alphabetically.
  std::vector<std::pair<std::string, PhaseTotals>> ordered(phases.begin(),
                                                           phases.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              return a.second.first_seen < b.second.first_seen;
            });

  AsciiTable table({"Phase", "Time", "%Run", "Vectors", "Detected", "GA runs",
                    "Generations"});
  double phase_total = 0.0;
  for (const auto& [name, p] : ordered) {
    phase_total += p.seconds;
    table.add_row(
        {name, format_duration(p.seconds),
         run_seconds > 0.0
             ? strprintf("%.1f%%", 100.0 * p.seconds / run_seconds)
             : "-",
         strprintf("%llu", static_cast<unsigned long long>(p.vectors)),
         strprintf("%llu", static_cast<unsigned long long>(p.detected)),
         strprintf("%llu", static_cast<unsigned long long>(p.ga_runs)),
         strprintf("%llu", static_cast<unsigned long long>(p.generations))});
  }
  if (table.row_count() == 0) {
    std::printf("no phase spans in trace\n");
  } else {
    table.print(std::cout);
    if (run_seconds > 0.0)
      std::printf("\nphase spans cover %s of %s run time (%.1f%%)\n",
                  format_duration(phase_total).c_str(),
                  format_duration(run_seconds).c_str(),
                  100.0 * phase_total / run_seconds);
  }

  if (list_commits && !commits.empty()) {
    std::printf("\n");
    AsciiTable ct({"Commit", "t", "Phase", "+Detected", "Coverage"});
    for (const CommitRow& row : commits)
      ct.add_row({strprintf("%llu", static_cast<unsigned long long>(row.index)),
                  format_duration(row.ts), row.phase,
                  strprintf("%llu",
                            static_cast<unsigned long long>(row.detected_delta)),
                  strprintf("%.2f%%", 100.0 * row.coverage)});
    ct.print(std::cout);
  }
  return 0;
}
