// gatest_loadgen: workload driver for the gatest_serve daemon.
//
// Submits a mixed stream of ATPG jobs — benchmark profiles plus, with
// --circuitgen, synthetic netlists shipped inline as .bench text — at a
// configurable arrival rate, waits for every job to reach a terminal state,
// and reports completed jobs/sec and client-observed submit-to-done latency
// quantiles (p50/p95 via the streaming P² estimator).
//
// Exit codes: 0 success; 1 assertion failure (--expect-complete with a
// non-done job, or --min-coverage unmet) or connection failure; 2 bad flags.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuitgen/circuitgen.h"
#include "netlist/bench_io.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "telemetry/json.h"
#include "util/net.h"
#include "util/stats.h"

using namespace gatest;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port N [options]\n"
      "\n"
      "  --host ADDR        daemon address (default 127.0.0.1)\n"
      "  --port N           daemon port (required)\n"
      "  --jobs N           jobs to submit (default 6)\n"
      "  --rate R           arrival rate in jobs/sec; 0 submits a burst "
      "(default 0)\n"
      "  --profiles CSV     profile rotation (default s298,s344,s27)\n"
      "  --circuitgen       make every third job an inline-.bench synthetic\n"
      "                     circuit instead of a named profile\n"
      "  --seed N           base seed; job i runs with seed N+i (default 1)\n"
      "  --max-evals N      per-job evaluation budget (default 2000)\n"
      "  --max-vectors N    per-job vector budget (default unlimited)\n"
      "  --min-coverage X   fail unless every done job covers >= X (0..1)\n"
      "  --expect-complete  fail unless every job ends in state done\n"
      "  --quiet            summary line only\n",
      argv0);
}

[[noreturn]] void flag_error(const char* flag, const char* expected,
                             const std::string& got) {
  std::fprintf(stderr, "gatest_loadgen: %s expects %s, got '%s'\n", flag,
               expected, got.c_str());
  std::exit(2);
}

std::string arg_value(int argc, char** argv, int& i, const char* argv0) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "gatest_loadgen: %s needs a value\n", argv[i]);
    usage(argv0);
    std::exit(2);
  }
  return argv[++i];
}

unsigned long parse_uint(const char* flag, const std::string& v,
                         const char* expected) {
  char* end = nullptr;
  const unsigned long n = std::strtoul(v.c_str(), &end, 10);
  if (v.empty() || *end != '\0' || v[0] == '-') flag_error(flag, expected, v);
  return n;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// One request/response round trip; exits 1 if the daemon goes away.
telemetry::JsonValue roundtrip(TcpConnection& conn, const std::string& req) {
  if (!conn.write_all(req)) {
    std::fprintf(stderr, "gatest_loadgen: connection lost on write\n");
    std::exit(1);
  }
  std::string line;
  if (conn.read_line(line, serve::kMaxRequestBytes) !=
      TcpConnection::ReadStatus::Ok) {
    std::fprintf(stderr, "gatest_loadgen: connection lost on read\n");
    std::exit(1);
  }
  try {
    return telemetry::parse_json(line);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gatest_loadgen: bad response '%s': %s\n",
                 line.c_str(), e.what());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  unsigned short port = 0;
  std::size_t num_jobs = 6;
  double rate = 0.0;
  std::vector<std::string> profiles = {"s298", "s344", "s27"};
  bool use_circuitgen = false;
  std::uint64_t seed = 1;
  std::uint64_t max_evals = 2000, max_vectors = 0;
  double min_coverage = -1.0;
  bool expect_complete = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--host") {
      host = arg_value(argc, argv, i, argv[0]);
    } else if (a == "--port") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      const unsigned long p = parse_uint("--port", v, "a port number 1-65535");
      if (p < 1 || p > 65535) flag_error("--port", "a port number 1-65535", v);
      port = static_cast<unsigned short>(p);
    } else if (a == "--jobs") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      num_jobs = parse_uint("--jobs", v, "a positive count");
      if (num_jobs == 0) flag_error("--jobs", "a positive count", v);
    } else if (a == "--rate") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      char* end = nullptr;
      rate = std::strtod(v.c_str(), &end);
      if (v.empty() || *end != '\0' || rate < 0.0)
        flag_error("--rate", "a non-negative jobs/sec rate", v);
    } else if (a == "--profiles") {
      profiles = split_csv(arg_value(argc, argv, i, argv[0]));
      if (profiles.empty())
        flag_error("--profiles", "a comma-separated profile list", "");
    } else if (a == "--circuitgen") {
      use_circuitgen = true;
    } else if (a == "--seed") {
      seed = parse_uint("--seed", arg_value(argc, argv, i, argv[0]),
                        "a non-negative seed");
    } else if (a == "--max-evals") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      max_evals = parse_uint("--max-evals", v, "a positive count");
      if (max_evals == 0) flag_error("--max-evals", "a positive count", v);
    } else if (a == "--max-vectors") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      max_vectors = parse_uint("--max-vectors", v, "a positive count");
      if (max_vectors == 0) flag_error("--max-vectors", "a positive count", v);
    } else if (a == "--min-coverage") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      char* end = nullptr;
      min_coverage = std::strtod(v.c_str(), &end);
      if (v.empty() || *end != '\0' || min_coverage < 0.0 ||
          min_coverage > 1.0)
        flag_error("--min-coverage", "a fraction in [0,1]", v);
    } else if (a == "--expect-complete") {
      expect_complete = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "gatest_loadgen: unknown flag '%s'\n", a.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "gatest_loadgen: --port is required\n");
    usage(argv[0]);
    return 2;
  }

  TcpConnection conn;
  try {
    conn = tcp_connect(host, port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gatest_loadgen: %s\n", e.what());
    return 1;
  }

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  std::map<std::uint64_t, Clock::time_point> submitted;  // id -> submit time
  std::map<std::uint64_t, double> latency;               // id -> seconds
  std::map<std::uint64_t, std::string> final_state;
  std::map<std::uint64_t, double> coverage;

  // ---- submission phase -----------------------------------------------------
  for (std::size_t i = 0; i < num_jobs; ++i) {
    if (rate > 0.0) {
      // Deterministic arrival schedule: job i departs at i/rate seconds.
      const auto due =
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(static_cast<double>(i) /
                                                 rate));
      std::this_thread::sleep_until(due);
    }
    serve::JsonWriter w;
    w.begin_object().key("cmd").value("submit");
    const std::string& profile = profiles[i % profiles.size()];
    if (use_circuitgen && i % 3 == 2) {
      // Exercise the inline-.bench path with a synthetic circuit matching
      // this profile's shape.
      const Circuit c =
          generate_circuit(profile_by_name(profile), seed + i);
      w.key("name").value("circuitgen-" + profile + "-" + std::to_string(i));
      w.key("bench").value(write_bench_string(c));
    } else {
      w.key("name").value(profile + "-" + std::to_string(i));
      w.key("profile").value(profile);
    }
    w.key("config").begin_object()
        .key("seed").value(static_cast<std::uint64_t>(seed + i))
    .end_object();
    w.key("budget").begin_object()
        .key("max_evals").value(static_cast<std::uint64_t>(max_evals));
    if (max_vectors > 0)
      w.key("max_vectors").value(static_cast<std::uint64_t>(max_vectors));
    w.end_object().end_object();

    // Overload rejections (overloaded / quota-exceeded / journal-error) are
    // retried with jittered exponential backoff honoring the server's
    // retry_after_ms hint; everything else is a hard failure.
    const std::string submit_req = w.take();
    serve::Backoff backoff({}, seed + i);
    telemetry::JsonValue resp;
    for (;;) {
      std::string raw;
      if (!serve::roundtrip(conn, submit_req, raw)) {
        std::fprintf(stderr, "gatest_loadgen: connection lost on submit\n");
        return 1;
      }
      unsigned hint = 0;
      if (serve::retryable_error(raw, hint)) {
        if (!backoff.can_retry()) {
          std::fprintf(stderr,
                       "gatest_loadgen: submit %zu still rejected after %u "
                       "retries: %s\n",
                       i, backoff.attempts(), raw.c_str());
          return 1;
        }
        const unsigned delay = backoff.next_delay_ms(hint);
        if (!quiet)
          std::fprintf(stderr,
                       "gatest_loadgen: submit %zu backpressured; retrying "
                       "in %u ms\n",
                       i, delay);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        continue;
      }
      try {
        resp = telemetry::parse_json(raw);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "gatest_loadgen: bad response '%s': %s\n",
                     raw.c_str(), e.what());
        return 1;
      }
      break;
    }
    const telemetry::JsonValue* okv = resp.find("ok");
    if (!okv || okv->type != telemetry::JsonValue::Type::Bool ||
        !okv->boolean) {
      std::fprintf(stderr, "gatest_loadgen: submit %zu rejected: %s\n", i,
                   resp.find("error")
                       ? resp.find("error")->string_or("message", "?").c_str()
                       : "?");
      return 1;
    }
    const auto id = static_cast<std::uint64_t>(resp.number_or("id", 0));
    submitted[id] = Clock::now();
    if (!quiet)
      std::fprintf(stderr, "gatest_loadgen: submitted job %llu (%s)\n",
                   static_cast<unsigned long long>(id), profile.c_str());
  }

  // ---- completion phase -----------------------------------------------------
  serve::JsonWriter sw;
  sw.begin_object().key("cmd").value("status").end_object();
  const std::string status_req = sw.take();
  while (latency.size() < submitted.size()) {
    const telemetry::JsonValue resp = roundtrip(conn, status_req);
    const telemetry::JsonValue* jobs = resp.find("jobs");
    if (jobs) {
      for (const telemetry::JsonValue& j : jobs->array) {
        const auto id = static_cast<std::uint64_t>(j.number_or("id", 0));
        if (!submitted.count(id) || latency.count(id)) continue;
        const std::string state = j.string_or("state", "");
        if (state == "done" || state == "cancelled" || state == "failed") {
          latency[id] = std::chrono::duration<double>(Clock::now() -
                                                      submitted[id])
                            .count();
          final_state[id] = state;
          coverage[id] = j.number_or("coverage", 0.0);
          if (!quiet)
            std::fprintf(stderr,
                         "gatest_loadgen: job %llu %s (%.1f%% coverage, "
                         "%.2fs)\n",
                         static_cast<unsigned long long>(id), state.c_str(),
                         coverage[id] * 100.0, latency[id]);
        }
      }
    }
    if (latency.size() < submitted.size())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  // ---- summary + assertions -------------------------------------------------
  RunningStats lat;
  std::size_t done = 0;
  for (const auto& [id, s] : latency) lat.add(s);
  for (const auto& [id, s] : final_state)
    if (s == "done") ++done;
  std::printf(
      "LOADGEN: %zu jobs, %zu done, %.2fs wall, %.2f jobs/sec, latency "
      "p50 %.2fs p95 %.2fs max %.2fs\n",
      submitted.size(), done, wall,
      wall > 0.0 ? static_cast<double>(done) / wall : 0.0, lat.p50(),
      lat.p95(), lat.max());

  int rc = 0;
  if (expect_complete && done != submitted.size()) {
    std::fprintf(stderr,
                 "gatest_loadgen: FAIL — %zu of %zu jobs did not complete\n",
                 submitted.size() - done, submitted.size());
    rc = 1;
  }
  if (min_coverage >= 0.0) {
    for (const auto& [id, cov] : coverage) {
      if (final_state[id] == "done" && cov < min_coverage) {
        std::fprintf(stderr,
                     "gatest_loadgen: FAIL — job %llu coverage %.3f < %.3f\n",
                     static_cast<unsigned long long>(id), cov, min_coverage);
        rc = 1;
      }
    }
  }
  return rc;
}
