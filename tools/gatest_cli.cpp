// gatest_atpg — command-line sequential ATPG.
//
// Runs any of the library's engines on a .bench netlist (or a built-in
// benchmark profile), optionally compacts the test set, and writes the
// vectors plus a per-fault report.
//
// Examples:
//   gatest_atpg --profile s298 --engine ga --seed 3 --out tests.txt
//   gatest_atpg --circuit mydesign.bench --engine two-pass --report
//   gatest_atpg --profile s1423 --engine ga --sample 200 --threads 4 --compact
//   gatest_atpg --profile s386 --engine ga --scan        # full-scan version
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include <iostream>

#include "analysis/lint.h"
#include "analysis/prune.h"
#include "analysis/untestable.h"
#include "atpg/cris_lite.h"
#include "atpg/hitec_lite.h"
#include "atpg/random_tpg.h"
#include "circuitgen/circuitgen.h"
#include "fault/fault.h"
#include "fsim/backend.h"
#include "fsim/fault_sim.h"
#include "gatest/checkpoint.h"
#include "gatest/compaction.h"
#include "gatest/test_generator.h"
#include "netlist/bench_io.h"
#include "netlist/scan.h"
#include "sim/responses.h"
#include "sim/vcd.h"
#include "telemetry/telemetry.h"
#include "util/run_control.h"

using namespace gatest;

namespace {

[[noreturn]] void usage(const char* prog, int code) {
  std::fprintf(
      stderr,
      "usage: %s (--circuit FILE.bench | --profile NAME) [options]\n"
      "\n"
      "engines:\n"
      "  --engine ga         GA-based generator (GATEST, default)\n"
      "  --engine random     fault-simulated random vectors\n"
      "  --engine cris       CRIS-style logic-simulation GA baseline\n"
      "  --engine hitec      deterministic time-frame PODEM baseline\n"
      "  --engine two-pass   GATEST first, then PODEM on the survivors\n"
      "\n"
      "options:\n"
      "  --seed N            RNG seed, non-negative (default 1)\n"
      "  --sample N          fault-sample size for GA fitness (0 = full)\n"
      "  --threads N         parallel fitness evaluation threads (>= 1)\n"
      "  --gap G             generation gap in (0,1] (default 1 = "
      "non-overlapping)\n"
      "  --coding binary|nonbinary\n"
      "  --selection roulette|sus|tournament|tournament-r\n"
      "  --crossover 1point|2point|uniform\n"
      "  --model stuck|transition   fault model (GA engines only for "
      "transition)\n"
      "  --scan              run on the full-scan version of the circuit\n"
      "  --compact           compact the final test set\n"
      "  --out FILE          write test vectors (one per line)\n"
      "  --responses FILE    write fault-free output responses ('x' = mask)\n"
      "  --vcd FILE          write a fault-free waveform trace of the tests\n"
      "  --write-bench FILE  dump the (possibly generated) netlist\n"
      "  --report            list undetected faults\n"
      "\n"
      "static analysis (gatest-lint; see also the gatest_lint tool):\n"
      "  --lint              print structural diagnostics before generation\n"
      "  --lint-only         print diagnostics and exit (0 clean, 1 warnings)\n"
      "  --prune-untestable  classify structurally untestable faults and\n"
      "                      report fault efficiency next to coverage\n"
      "                      (accounting only: generated tests and detected\n"
      "                      faults are identical to an unpruned run)\n"
      "  --prune-proven      prove faults untestable with the static\n"
      "                      implication engine and remove the provably\n"
      "                      inert subset from the simulated universe\n"
      "                      (generated tests and detected faults stay\n"
      "                      bit-identical to an unpruned run)\n"
      "  --fitness-cache     memoize genome fitness between commits (emitted\n"
      "                      tests are bit-identical with or without it)\n"
      "  --lane-compaction   re-pack the undetected-fault tail into dense\n"
      "                      64-lane words (bit-identical results)\n"
      "  --fsim-backend NAME fault-simulation engine: event (PROOFS-style\n"
      "                      event-driven, default) or levelized (table-\n"
      "                      driven 256-lane sweep, AVX2 when available).\n"
      "                      Every backend emits bit-identical test sets\n"
      "                      and coverage; only wall-clock time changes\n"
      "\n"
      "run control (GA engines; SIGINT/SIGTERM stop cooperatively and flush):\n"
      "  --time-limit SEC    stop after SEC seconds of wall clock\n"
      "  --max-evals N       stop after N fitness evaluations\n"
      "  --max-vectors N     stop once N vectors are committed\n"
      "  --checkpoint FILE   write periodic + on-stop checkpoints to FILE\n"
      "  --checkpoint-interval SEC   periodic save cadence (default 30)\n"
      "  --resume FILE       continue a run from a checkpoint (same circuit;\n"
      "                      the checkpoint's seed is used)\n"
      "\n"
      "telemetry (GA engines; observation-only — the generated test set is\n"
      "bit-identical with or without these, at any thread count):\n"
      "  --metrics-out FILE  write a metrics snapshot (counters, gauges,\n"
      "                      latency histograms) as JSON after the run\n"
      "  --trace-out FILE    write structured JSONL run-trace events (phases,\n"
      "                      GA runs, generations, commits, checkpoints);\n"
      "                      summarize with the gatest_report tool\n"
      "  --progress          live one-line status on stderr\n"
      "  --quiet             suppress informational stderr messages\n"
      "  --verbose           debug-level stderr messages + metrics table\n",
      prog);
  std::exit(code);
}

const char* arg_value(int argc, char** argv, int& i, const char* prog) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s: %s requires a value\n", prog, argv[i]);
    std::exit(2);
  }
  return argv[++i];
}

[[noreturn]] void flag_error(const char* flag, const char* expected,
                             const char* got) {
  std::fprintf(stderr, "gatest_atpg: %s expects %s, got '%s'\n", flag,
               expected, got);
  std::exit(2);
}

/// Strict unsigned integer parse: the whole token must be digits (an
/// explicit rejection of the old atoi-style "accept any prefix" behavior).
unsigned long long parse_uint(const char* flag, const char* s,
                              unsigned long long min_value = 0) {
  if (*s == '\0' || *s == '-' || *s == '+')
    flag_error(flag, "a non-negative integer", s);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0')
    flag_error(flag, "a non-negative integer", s);
  if (v < min_value) {
    char what[64];
    std::snprintf(what, sizeof what, "an integer >= %llu", min_value);
    flag_error(flag, what, s);
  }
  return v;
}

/// Strict double parse; the caller constrains the range.
double parse_double(const char* flag, const char* s, const char* expected) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno == ERANGE || end == s || *end != '\0') flag_error(flag, expected, s);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit_file, profile, engine = "ga", out_file, bench_out;
  std::string model = "stuck", resp_file, vcd_file;
  std::string checkpoint_file, resume_file;
  std::string metrics_file, trace_file;
  bool do_compact = false, do_report = false, do_scan = false;
  bool do_lint = false, lint_only = false;
  bool show_progress = false;
  TestGenConfig cfg;
  RunControl rc;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--circuit") circuit_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--profile") profile = arg_value(argc, argv, i, argv[0]);
    else if (a == "--engine") engine = arg_value(argc, argv, i, argv[0]);
    else if (a == "--seed") cfg.seed = parse_uint("--seed", arg_value(argc, argv, i, argv[0]));
    else if (a == "--sample") cfg.fault_sample_size = static_cast<unsigned>(parse_uint("--sample", arg_value(argc, argv, i, argv[0])));
    else if (a == "--threads") cfg.num_threads = static_cast<unsigned>(parse_uint("--threads", arg_value(argc, argv, i, argv[0]), 1));
    else if (a == "--gap") {
      const char* v = arg_value(argc, argv, i, argv[0]);
      cfg.generation_gap = parse_double("--gap", v, "a number in (0,1]");
      if (!(cfg.generation_gap > 0.0 && cfg.generation_gap <= 1.0))
        flag_error("--gap", "a number in (0,1]", v);
    }
    else if (a == "--time-limit") {
      const char* v = arg_value(argc, argv, i, argv[0]);
      rc.budget.time_limit_seconds = parse_double("--time-limit", v, "a positive number of seconds");
      if (rc.budget.time_limit_seconds <= 0.0)
        flag_error("--time-limit", "a positive number of seconds", v);
    }
    else if (a == "--max-evals") rc.budget.max_evaluations = parse_uint("--max-evals", arg_value(argc, argv, i, argv[0]), 1);
    else if (a == "--max-vectors") rc.budget.max_vectors = parse_uint("--max-vectors", arg_value(argc, argv, i, argv[0]), 1);
    else if (a == "--checkpoint") checkpoint_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--checkpoint-interval") {
      const char* v = arg_value(argc, argv, i, argv[0]);
      rc.checkpoint_interval_seconds = parse_double("--checkpoint-interval", v, "a positive number of seconds");
      if (rc.checkpoint_interval_seconds <= 0.0)
        flag_error("--checkpoint-interval", "a positive number of seconds", v);
    }
    else if (a == "--resume") resume_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--metrics-out") metrics_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--trace-out") trace_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--progress") show_progress = true;
    else if (a == "--quiet") telemetry::global_logger().set_level(telemetry::LogLevel::Quiet);
    else if (a == "--verbose") telemetry::global_logger().set_level(telemetry::LogLevel::Debug);
    else if (a == "--coding") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      cfg.sequence_coding = v == "nonbinary" ? Coding::NonBinary : Coding::Binary;
    } else if (a == "--selection") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      if (v == "roulette") cfg.selection = SelectionScheme::RouletteWheel;
      else if (v == "sus") cfg.selection = SelectionScheme::StochasticUniversal;
      else if (v == "tournament") cfg.selection = SelectionScheme::TournamentNoReplacement;
      else if (v == "tournament-r") cfg.selection = SelectionScheme::TournamentWithReplacement;
      else usage(argv[0], 2);
    } else if (a == "--crossover") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      if (v == "1point") cfg.crossover = CrossoverScheme::OnePoint;
      else if (v == "2point") cfg.crossover = CrossoverScheme::TwoPoint;
      else if (v == "uniform") cfg.crossover = CrossoverScheme::Uniform;
      else usage(argv[0], 2);
    }
    else if (a == "--model") {
      model = arg_value(argc, argv, i, argv[0]);
      if (model != "stuck" && model != "transition") usage(argv[0], 2);
    }
    else if (a == "--scan") do_scan = true;
    else if (a == "--lint") do_lint = true;
    else if (a == "--lint-only") lint_only = true;
    else if (a == "--prune-untestable") cfg.prune_untestable = true;
    else if (a == "--prune-proven") cfg.prune_proven = true;
    else if (a == "--fsim-backend") {
      const char* v = arg_value(argc, argv, i, argv[0]);
      if (!fault_sim_backend_known(v)) {
        std::string known;
        for (const std::string& n : fault_sim_backend_names()) {
          if (!known.empty()) known += '|';
          known += n;
        }
        flag_error("--fsim-backend", known.c_str(), v);
      }
      cfg.fsim_backend = v;
    }
    else if (a == "--fitness-cache") cfg.fitness_cache = true;
    else if (a == "--lane-compaction") cfg.lane_compaction = true;
    else if (a == "--compact") do_compact = true;
    else if (a == "--report") do_report = true;
    else if (a == "--out") out_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--responses") resp_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--vcd") vcd_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--write-bench") bench_out = arg_value(argc, argv, i, argv[0]);
    else if (a == "--help" || a == "-h") usage(argv[0], 0);
    else usage(argv[0], 2);
  }
  if (circuit_file.empty() == profile.empty()) usage(argv[0], 2);

  const bool ga_engine = engine == "ga" || engine == "two-pass";
  const bool want_telemetry =
      !metrics_file.empty() || !trace_file.empty() || show_progress;
  if (want_telemetry && !ga_engine)
    telemetry::global_logger().warn(
        "telemetry flags only apply to the GA engines; ignored for '%s'",
        engine.c_str());
  if (!resume_file.empty() && !ga_engine) {
    std::fprintf(stderr, "gatest_atpg: --resume only applies to the GA "
                         "engines (ga, two-pass)\n");
    return 2;
  }
  if ((!checkpoint_file.empty() || !rc.budget.unlimited()) && !ga_engine)
    telemetry::global_logger().warn(
        "budgets and checkpoints only apply to the GA engines; ignored "
        "for '%s'",
        engine.c_str());
  rc.checkpoint_path = checkpoint_file;
  // Ctrl-C / SIGTERM stop the run at the next commit boundary; the partial
  // test set, report, and checkpoint are flushed below as usual.
  rc.stop = &global_stop_token();
  install_signal_stop_handlers();

  Circuit circuit("uninitialized");
  std::vector<BenchWarning> bench_warnings;
  try {
    circuit = circuit_file.empty()
                  ? benchmark_circuit(profile)
                  : load_bench_file(circuit_file, &bench_warnings);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gatest_atpg: %s\n", e.what());
    return 1;
  }
  if (do_scan) circuit = full_scan_version(circuit);

  std::printf("%s: %zu PIs, %zu POs, %zu FFs, %zu gates, depth %u\n",
              circuit.name().c_str(), circuit.num_inputs(),
              circuit.num_outputs(), circuit.num_dffs(),
              circuit.num_logic_gates(), circuit.sequential_depth());

  if (do_lint || lint_only) {
    analysis::AnalysisReport lint = analysis::lint_circuit(circuit);
    analysis::add_bench_warnings(lint, bench_warnings);
    std::printf("\n");
    analysis::write_text(lint, std::cout);
    std::cout.flush();
    if (lint_only) return analysis::exit_code(lint);
    std::printf("\n");
  }

  if (!bench_out.empty()) {
    std::ofstream f(bench_out);
    write_bench(circuit, f);
    std::printf("netlist written to %s\n", bench_out.c_str());
  }

  FaultList faults = model == "transition"
                         ? FaultList(circuit, enumerate_transition_faults(circuit))
                         : FaultList(circuit);
  std::printf("%zu %s faults\n\n", faults.size(),
              model == "transition" ? "transition" : "collapsed stuck-at");

  TestGenResult result;
  telemetry::RunTelemetry telem;
  if (ga_engine) {
    GaTestGenerator gen(circuit, faults, cfg);
    gen.set_run_control(rc);
    if (want_telemetry) {
      if (!trace_file.empty()) {
        try {
          telem.trace.open(trace_file);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "gatest_atpg: %s\n", e.what());
          return 1;
        }
      }
      telem.progress.enable(show_progress);
      // Attach before a possible restore so the resume event is traced.
      gen.set_telemetry(&telem);
    }
    if (!resume_file.empty()) {
      try {
        const Checkpoint cp = Checkpoint::load(resume_file);
        gen.restore_from_checkpoint(cp);
        std::printf("resumed from %s: %zu vectors, %zu faults detected, "
                    "%.2fs prior\n",
                    resume_file.c_str(), cp.test_set.size(),
                    faults.num_detected(), cp.seconds);
      } catch (const std::exception& e) {
        // A missing, truncated, or mismatched checkpoint is an operator
        // error, same class as a bad flag value: exit 2 with the offending
        // path in the diagnostic.
        std::fprintf(stderr, "gatest_atpg: --resume %s: %s\n",
                     resume_file.c_str(), e.what());
        return 2;
      }
    }
    result = gen.run();
    std::printf("GATEST: %zu detected, %zu vectors, %.2fs, %zu evaluations\n",
                result.faults_detected, result.test_set.size(), result.seconds,
                result.fitness_evaluations);
    if (result.stop_reason != StopReason::Completed) {
      std::printf("run stopped early: %s%s%s\n", to_string(result.stop_reason),
                  result.error_message.empty() ? "" : " — ",
                  result.error_message.c_str());
      if (!checkpoint_file.empty())
        std::printf("checkpoint written to %s (resume with --resume %s)\n",
                    checkpoint_file.c_str(), checkpoint_file.c_str());
    }
    if (engine == "two-pass") {
      if (result.stop_reason != StopReason::Completed) {
        std::printf("PODEM pass skipped (GA run did not complete)\n");
      } else {
        HitecLiteConfig hcfg;
        const HitecLiteResult det = run_hitec_lite(circuit, faults, hcfg);
        std::printf("PODEM pass: +%zu tests, %zu aborted, %zu "
                    "untestable-in-window, %.2fs\n",
                    det.test_found, det.aborted, det.no_test_in_window,
                    det.gen.seconds);
        for (const TestVector& v : det.gen.test_set)
          result.test_set.push_back(v);
        result.faults_detected = faults.num_detected();
      }
    }
    if (want_telemetry) {
      telem.trace.close();
      if (!trace_file.empty())
        telemetry::global_logger().info("trace written to %s",
                                        trace_file.c_str());
      if (!metrics_file.empty()) {
        std::ofstream f(metrics_file);
        if (!f) {
          std::fprintf(stderr, "gatest_atpg: cannot write %s\n",
                       metrics_file.c_str());
          return 1;
        }
        telem.metrics.write_json(f);
        telemetry::global_logger().info("metrics written to %s",
                                        metrics_file.c_str());
      }
      if (telemetry::global_logger().enabled(telemetry::LogLevel::Debug)) {
        telem.metrics.write_text(std::cerr);
        std::cerr.flush();
      }
    }
  } else if (engine == "random") {
    RandomTpgConfig rcfg;
    rcfg.seed = cfg.seed;
    result = run_random_tpg(circuit, faults, rcfg);
    std::printf("random: %zu detected, %zu vectors, %.2fs\n",
                result.faults_detected, result.test_set.size(), result.seconds);
  } else if (engine == "cris") {
    CrisLiteConfig ccfg;
    ccfg.seed = cfg.seed;
    result = run_cris_lite(circuit, faults, ccfg);
    std::printf("CRIS-like: %zu detected, %zu vectors, %.2fs\n",
                result.faults_detected, result.test_set.size(), result.seconds);
  } else if (engine == "hitec") {
    HitecLiteConfig hcfg;
    const HitecLiteResult det = run_hitec_lite(circuit, faults, hcfg);
    result = det.gen;
    std::printf("PODEM: %zu detected, %zu vectors, %zu aborted, %zu "
                "untestable-in-window, %.2fs\n",
                result.faults_detected, result.test_set.size(), det.aborted,
                det.no_test_in_window, result.seconds);
  } else {
    usage(argv[0], 2);
  }

  if (do_compact && !result.test_set.empty()) {
    const CompactionResult comp = compact_test_set(circuit, result.test_set);
    std::printf("compaction: %zu -> %zu vectors (%zu simulation passes)\n",
                comp.original_length, comp.compacted_length,
                comp.simulation_passes);
    result.test_set = comp.test_set;
  }

  if (cfg.prune_untestable) {
    // Accounting-only pass at the very end of the pipeline: classified
    // faults the run left undetected become Untestable (detected faults are
    // never downgraded), and efficiency reports the pruned denominator.
    const analysis::PruneSummary ps = analysis::mark_untestable_faults(faults);
    const std::size_t testable = ps.testable();
    std::printf("\nstatic pruning: %zu/%zu faults structurally untestable "
                "(%zu unactivatable, %zu unobservable)\n",
                ps.pruned, faults.size(), ps.unactivatable, ps.unobservable);
    std::printf("fault efficiency: %.2f%% (%zu/%zu testable faults)\n",
                testable == 0
                    ? 100.0
                    : 100.0 * static_cast<double>(faults.num_detected()) /
                          static_cast<double>(testable),
                faults.num_detected(), testable);
  }

  if (cfg.prune_proven) {
    // End-of-run accounting over the implication-engine proofs: proven
    // faults the run left undetected become Untestable (the inert subset
    // never entered the universe; the rest could only have created
    // undetectable activity).  A proven-but-detected fault would falsify
    // the engine's soundness.
    const auto proofs = analysis::prove_untestable(circuit, faults.faults());
    const analysis::ProvenSummary ps =
        analysis::mark_proven_faults(faults, proofs);
    std::printf("\nimplication proofs: %zu/%zu faults proven untestable "
                "(%zu constant-site, %zu unreachable-value, "
                "%zu activation-conflict, %zu blocked-propagation); "
                "%zu inert faults pruned from the simulated universe\n",
                ps.proven, faults.size(), ps.constant_site,
                ps.unreachable_value, ps.activation_conflict,
                ps.blocked_propagation, faults.num_pruned());
    if (ps.already_detected != 0)
      std::fprintf(stderr,
                   "ERROR: %zu proven-untestable faults were detected — "
                   "implication engine soundness violation\n",
                   ps.already_detected);
    const std::size_t testable = ps.total_faults - ps.proven;
    std::printf("fault efficiency: %.2f%% (%zu/%zu provably-testable "
                "faults)\n",
                testable == 0
                    ? 100.0
                    : 100.0 * static_cast<double>(faults.num_detected()) /
                          static_cast<double>(testable),
                faults.num_detected(), testable);
  }

  std::printf("\nfinal: %zu/%zu detected (%.2f%% coverage), %zu untestable, "
              "test length %zu\n",
              faults.num_detected(), faults.size(), 100.0 * faults.coverage(),
              faults.num_untestable(), result.test_set.size());

  if (!out_file.empty()) {
    std::ofstream f(out_file);
    f << "# " << circuit.name() << " — " << result.test_set.size()
      << " vectors, inputs:";
    for (GateId pi : circuit.inputs()) f << ' ' << circuit.gate(pi).name;
    f << '\n';
    for (const TestVector& v : result.test_set) f << logic_string(v) << '\n';
    std::printf("test set written to %s\n", out_file.c_str());
  }

  if (!resp_file.empty()) {
    const auto responses = capture_responses(circuit, result.test_set);
    std::ofstream f(resp_file);
    f << "# " << circuit.name() << " fault-free responses, outputs:";
    for (GateId po : circuit.outputs()) f << ' ' << circuit.gate(po).name;
    f << '\n';
    for (const auto& r : responses) f << logic_string(r) << '\n';
    std::printf("responses written to %s\n", resp_file.c_str());
  }

  if (!vcd_file.empty()) {
    std::ofstream f(vcd_file);
    write_vcd(circuit, result.test_set, f);
    std::printf("waveform written to %s\n", vcd_file.c_str());
  }

  if (do_report) {
    std::printf("\nundetected faults:\n");
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (faults.status(i) == FaultStatus::Undetected)
        std::printf("  %s\n", fault_name(circuit, faults.fault(i)).c_str());
  }
  return 0;
}
