// gatest_atpg — command-line sequential ATPG.
//
// Runs any of the library's engines on a .bench netlist (or a built-in
// benchmark profile), optionally compacts the test set, and writes the
// vectors plus a per-fault report.
//
// Examples:
//   gatest_atpg --profile s298 --engine ga --seed 3 --out tests.txt
//   gatest_atpg --circuit mydesign.bench --engine two-pass --report
//   gatest_atpg --profile s1423 --engine ga --sample 200 --threads 4 --compact
//   gatest_atpg --profile s386 --engine ga --scan        # full-scan version
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "atpg/cris_lite.h"
#include "atpg/hitec_lite.h"
#include "atpg/random_tpg.h"
#include "circuitgen/circuitgen.h"
#include "fault/fault.h"
#include "fsim/fault_sim.h"
#include "gatest/compaction.h"
#include "gatest/test_generator.h"
#include "netlist/bench_io.h"
#include "netlist/scan.h"
#include "sim/responses.h"
#include "sim/vcd.h"

using namespace gatest;

namespace {

[[noreturn]] void usage(const char* prog, int code) {
  std::fprintf(
      stderr,
      "usage: %s (--circuit FILE.bench | --profile NAME) [options]\n"
      "\n"
      "engines:\n"
      "  --engine ga         GA-based generator (GATEST, default)\n"
      "  --engine random     fault-simulated random vectors\n"
      "  --engine cris       CRIS-style logic-simulation GA baseline\n"
      "  --engine hitec      deterministic time-frame PODEM baseline\n"
      "  --engine two-pass   GATEST first, then PODEM on the survivors\n"
      "\n"
      "options:\n"
      "  --seed N            RNG seed (default 1)\n"
      "  --sample N          fault-sample size for GA fitness (0 = full)\n"
      "  --threads N         parallel fitness evaluation threads\n"
      "  --gap G             generation gap in (0,1] (default 1 = "
      "non-overlapping)\n"
      "  --coding binary|nonbinary\n"
      "  --selection roulette|sus|tournament|tournament-r\n"
      "  --crossover 1point|2point|uniform\n"
      "  --model stuck|transition   fault model (GA engines only for "
      "transition)\n"
      "  --scan              run on the full-scan version of the circuit\n"
      "  --compact           compact the final test set\n"
      "  --out FILE          write test vectors (one per line)\n"
      "  --responses FILE    write fault-free output responses ('x' = mask)\n"
      "  --vcd FILE          write a fault-free waveform trace of the tests\n"
      "  --write-bench FILE  dump the (possibly generated) netlist\n"
      "  --report            list undetected faults\n",
      prog);
  std::exit(code);
}

const char* arg_value(int argc, char** argv, int& i, const char* prog) {
  if (i + 1 >= argc) usage(prog, 2);
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit_file, profile, engine = "ga", out_file, bench_out;
  std::string model = "stuck", resp_file, vcd_file;
  bool do_compact = false, do_report = false, do_scan = false;
  TestGenConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--circuit") circuit_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--profile") profile = arg_value(argc, argv, i, argv[0]);
    else if (a == "--engine") engine = arg_value(argc, argv, i, argv[0]);
    else if (a == "--seed") cfg.seed = std::strtoull(arg_value(argc, argv, i, argv[0]), nullptr, 10);
    else if (a == "--sample") cfg.fault_sample_size = static_cast<unsigned>(std::strtoul(arg_value(argc, argv, i, argv[0]), nullptr, 10));
    else if (a == "--threads") cfg.num_threads = static_cast<unsigned>(std::strtoul(arg_value(argc, argv, i, argv[0]), nullptr, 10));
    else if (a == "--gap") cfg.generation_gap = std::strtod(arg_value(argc, argv, i, argv[0]), nullptr);
    else if (a == "--coding") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      cfg.sequence_coding = v == "nonbinary" ? Coding::NonBinary : Coding::Binary;
    } else if (a == "--selection") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      if (v == "roulette") cfg.selection = SelectionScheme::RouletteWheel;
      else if (v == "sus") cfg.selection = SelectionScheme::StochasticUniversal;
      else if (v == "tournament") cfg.selection = SelectionScheme::TournamentNoReplacement;
      else if (v == "tournament-r") cfg.selection = SelectionScheme::TournamentWithReplacement;
      else usage(argv[0], 2);
    } else if (a == "--crossover") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      if (v == "1point") cfg.crossover = CrossoverScheme::OnePoint;
      else if (v == "2point") cfg.crossover = CrossoverScheme::TwoPoint;
      else if (v == "uniform") cfg.crossover = CrossoverScheme::Uniform;
      else usage(argv[0], 2);
    }
    else if (a == "--model") {
      model = arg_value(argc, argv, i, argv[0]);
      if (model != "stuck" && model != "transition") usage(argv[0], 2);
    }
    else if (a == "--scan") do_scan = true;
    else if (a == "--compact") do_compact = true;
    else if (a == "--report") do_report = true;
    else if (a == "--out") out_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--responses") resp_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--vcd") vcd_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--write-bench") bench_out = arg_value(argc, argv, i, argv[0]);
    else if (a == "--help" || a == "-h") usage(argv[0], 0);
    else usage(argv[0], 2);
  }
  if (circuit_file.empty() == profile.empty()) usage(argv[0], 2);

  Circuit circuit = circuit_file.empty() ? benchmark_circuit(profile)
                                         : load_bench_file(circuit_file);
  if (do_scan) circuit = full_scan_version(circuit);

  std::printf("%s: %zu PIs, %zu POs, %zu FFs, %zu gates, depth %u\n",
              circuit.name().c_str(), circuit.num_inputs(),
              circuit.num_outputs(), circuit.num_dffs(),
              circuit.num_logic_gates(), circuit.sequential_depth());

  if (!bench_out.empty()) {
    std::ofstream f(bench_out);
    write_bench(circuit, f);
    std::printf("netlist written to %s\n", bench_out.c_str());
  }

  FaultList faults = model == "transition"
                         ? FaultList(circuit, enumerate_transition_faults(circuit))
                         : FaultList(circuit);
  std::printf("%zu %s faults\n\n", faults.size(),
              model == "transition" ? "transition" : "collapsed stuck-at");

  TestGenResult result;
  if (engine == "ga" || engine == "two-pass") {
    GaTestGenerator gen(circuit, faults, cfg);
    result = gen.run();
    std::printf("GATEST: %zu detected, %zu vectors, %.2fs, %zu evaluations\n",
                result.faults_detected, result.test_set.size(), result.seconds,
                result.fitness_evaluations);
    if (engine == "two-pass") {
      HitecLiteConfig hcfg;
      const HitecLiteResult det = run_hitec_lite(circuit, faults, hcfg);
      std::printf("PODEM pass: +%zu tests, %zu aborted, %zu "
                  "untestable-in-window, %.2fs\n",
                  det.test_found, det.aborted, det.no_test_in_window,
                  det.gen.seconds);
      for (const TestVector& v : det.gen.test_set)
        result.test_set.push_back(v);
      result.faults_detected = faults.num_detected();
    }
  } else if (engine == "random") {
    RandomTpgConfig rcfg;
    rcfg.seed = cfg.seed;
    result = run_random_tpg(circuit, faults, rcfg);
    std::printf("random: %zu detected, %zu vectors, %.2fs\n",
                result.faults_detected, result.test_set.size(), result.seconds);
  } else if (engine == "cris") {
    CrisLiteConfig ccfg;
    ccfg.seed = cfg.seed;
    result = run_cris_lite(circuit, faults, ccfg);
    std::printf("CRIS-like: %zu detected, %zu vectors, %.2fs\n",
                result.faults_detected, result.test_set.size(), result.seconds);
  } else if (engine == "hitec") {
    HitecLiteConfig hcfg;
    const HitecLiteResult det = run_hitec_lite(circuit, faults, hcfg);
    result = det.gen;
    std::printf("PODEM: %zu detected, %zu vectors, %zu aborted, %zu "
                "untestable-in-window, %.2fs\n",
                result.faults_detected, result.test_set.size(), det.aborted,
                det.no_test_in_window, result.seconds);
  } else {
    usage(argv[0], 2);
  }

  if (do_compact && !result.test_set.empty()) {
    const CompactionResult comp = compact_test_set(circuit, result.test_set);
    std::printf("compaction: %zu -> %zu vectors (%zu simulation passes)\n",
                comp.original_length, comp.compacted_length,
                comp.simulation_passes);
    result.test_set = comp.test_set;
  }

  std::printf("\nfinal: %zu/%zu detected (%.2f%% coverage), %zu untestable, "
              "test length %zu\n",
              faults.num_detected(), faults.size(), 100.0 * faults.coverage(),
              faults.num_untestable(), result.test_set.size());

  if (!out_file.empty()) {
    std::ofstream f(out_file);
    f << "# " << circuit.name() << " — " << result.test_set.size()
      << " vectors, inputs:";
    for (GateId pi : circuit.inputs()) f << ' ' << circuit.gate(pi).name;
    f << '\n';
    for (const TestVector& v : result.test_set) f << logic_string(v) << '\n';
    std::printf("test set written to %s\n", out_file.c_str());
  }

  if (!resp_file.empty()) {
    const auto responses = capture_responses(circuit, result.test_set);
    std::ofstream f(resp_file);
    f << "# " << circuit.name() << " fault-free responses, outputs:";
    for (GateId po : circuit.outputs()) f << ' ' << circuit.gate(po).name;
    f << '\n';
    for (const auto& r : responses) f << logic_string(r) << '\n';
    std::printf("responses written to %s\n", resp_file.c_str());
  }

  if (!vcd_file.empty()) {
    std::ofstream f(vcd_file);
    write_vcd(circuit, result.test_set, f);
    std::printf("waveform written to %s\n", vcd_file.c_str());
  }

  if (do_report) {
    std::printf("\nundetected faults:\n");
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (faults.status(i) == FaultStatus::Undetected)
        std::printf("  %s\n", fault_name(circuit, faults.fault(i)).c_str());
  }
  return 0;
}
