// gatest_lint — structural static analysis for .bench netlists.
//
// Runs every gatest-lint pass (dead logic, undriven outputs, uninitializable
// flip-flops, unobservable stems, constant nets, fanout/cone checks, parser
// findings) and reports as compiler-style text or machine-readable JSON.
//
// Exit codes: 0 = clean (info only), 1 = warnings, 2 = errors (including
// netlists that fail to parse), 3 = usage error.
//
// Examples:
//   gatest_lint --circuit design.bench
//   gatest_lint --profile s298 --format json
//   gatest_lint --circuit design.bench --prune --no-info
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/prune.h"
#include "analysis/untestable.h"
#include "circuitgen/circuitgen.h"
#include "fault/fault.h"
#include "netlist/bench_io.h"

using namespace gatest;

namespace {

[[noreturn]] void usage(const char* prog, int code) {
  std::fprintf(
      stderr,
      "usage: %s (--circuit FILE.bench | --profile NAME) [options]\n"
      "\n"
      "options:\n"
      "  --format text|json  report format (default text)\n"
      "  --out FILE          write the report to FILE instead of stdout\n"
      "  --prune             classify the collapsed stuck-at universe and\n"
      "                      report structurally untestable fault counts\n"
      "  --prove             run the static implication engine and report\n"
      "                      every proven-untestable fault with its witness\n"
      "                      contradiction (one Info diagnostic per fault)\n"
      "  --max-fanout N      fanout warning threshold (default 64)\n"
      "  --deep-cone N       SCOAP difficulty for deep-cone infos "
      "(default 200)\n"
      "  --no-info           drop Info diagnostics from the report\n"
      "\n"
      "exit codes: 0 clean, 1 warnings, 2 errors, 3 usage\n",
      prog);
  std::exit(code);
}

const char* arg_value(int argc, char** argv, int& i, const char* prog) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s: %s requires a value\n", prog, argv[i]);
    std::exit(3);
  }
  return argv[++i];
}

unsigned long long parse_uint(const char* prog, const char* flag,
                              const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (*s == '\0' || *s == '-' || *s == '+' || end == s || *end != '\0') {
    std::fprintf(stderr, "%s: %s expects a non-negative integer, got '%s'\n",
                 prog, flag, s);
    std::exit(3);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit_file, profile, format = "text", out_file;
  bool do_prune = false, do_prove = false, no_info = false;
  analysis::LintOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--circuit") circuit_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--profile") profile = arg_value(argc, argv, i, argv[0]);
    else if (a == "--format") {
      format = arg_value(argc, argv, i, argv[0]);
      if (format != "text" && format != "json") usage(argv[0], 3);
    }
    else if (a == "--out") out_file = arg_value(argc, argv, i, argv[0]);
    else if (a == "--prune") do_prune = true;
    else if (a == "--prove") do_prove = true;
    else if (a == "--max-fanout")
      opts.max_fanout = static_cast<std::size_t>(parse_uint(
          argv[0], "--max-fanout", arg_value(argc, argv, i, argv[0])));
    else if (a == "--deep-cone")
      opts.deep_cone_threshold = static_cast<std::uint32_t>(parse_uint(
          argv[0], "--deep-cone", arg_value(argc, argv, i, argv[0])));
    else if (a == "--no-info") no_info = true;
    else if (a == "--help" || a == "-h") usage(argv[0], 0);
    else usage(argv[0], 3);
  }
  if (circuit_file.empty() == profile.empty()) usage(argv[0], 3);

  std::ostream* out = &std::cout;
  std::ofstream out_stream;
  if (!out_file.empty()) {
    out_stream.open(out_file);
    if (!out_stream) {
      std::fprintf(stderr, "%s: cannot open output file %s\n", argv[0],
                   out_file.c_str());
      return 3;
    }
    out = &out_stream;
  }

  analysis::AnalysisReport report;
  std::vector<BenchWarning> bench_warnings;
  Circuit circuit("unparsed");
  bool parsed = false;
  try {
    circuit = circuit_file.empty()
                  ? benchmark_circuit(profile)
                  : load_bench_file(circuit_file, &bench_warnings);
    parsed = true;
    report = analysis::lint_circuit(circuit, opts);
    analysis::add_bench_warnings(report, bench_warnings);
  } catch (const std::exception& e) {
    // Parse/structural failures become Error diagnostics so tooling sees a
    // report (and exit code 2) instead of a bare stderr message.
    report.circuit_name =
        circuit_file.empty() ? profile
                             : circuit_file.substr(circuit_file.rfind('/') + 1);
    report.add(analysis::Severity::Error, "parse-error",
               circuit_file.empty() ? profile : circuit_file, e.what());
  }

  if (parsed && do_prune) {
    const FaultList faults(circuit);
    const analysis::PruneSummary ps = analysis::summarize_tags(
        analysis::classify_untestable(circuit, faults.faults()));
    report.add(analysis::Severity::Info, "prune-summary", circuit.name(),
               std::to_string(ps.pruned) + " of " +
                   std::to_string(ps.total_faults) +
                   " collapsed stuck-at faults structurally untestable (" +
                   std::to_string(ps.unactivatable) + " unactivatable, " +
                   std::to_string(ps.unobservable) + " unobservable)");
  }

  if (parsed && do_prove) {
    const FaultList faults(circuit);
    const auto proofs = analysis::prove_untestable(circuit, faults.faults());
    const analysis::ProvenSummary ps = analysis::summarize_proofs(proofs);
    for (std::size_t i = 0; i < proofs.size(); ++i) {
      if (!proofs[i].proven()) continue;
      report.add(analysis::Severity::Info,
                 "proven-untestable-" +
                     std::string(analysis::proof_kind_name(proofs[i].kind)),
                 fault_name(circuit, faults.fault(i)),
                 proofs[i].witness +
                     (proofs[i].inert ? " [inert: prunable]" : ""));
    }
    report.add(analysis::Severity::Info, "prove-summary", circuit.name(),
               std::to_string(ps.proven) + " of " +
                   std::to_string(ps.total_faults) +
                   " collapsed stuck-at faults proven untestable (" +
                   std::to_string(ps.constant_site) + " constant-site, " +
                   std::to_string(ps.unreachable_value) +
                   " unreachable-value, " +
                   std::to_string(ps.activation_conflict) +
                   " activation-conflict, " +
                   std::to_string(ps.blocked_propagation) +
                   " blocked-propagation); " + std::to_string(ps.inert) +
                   " inert (prunable)");
  }

  if (no_info) {
    auto& d = report.diagnostics;
    d.erase(std::remove_if(d.begin(), d.end(),
                           [](const analysis::Diagnostic& x) {
                             return x.severity == analysis::Severity::Info;
                           }),
            d.end());
  }

  if (format == "json")
    analysis::write_json(report, *out);
  else
    analysis::write_text(report, *out);
  return analysis::exit_code(report);
}
