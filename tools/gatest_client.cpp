// gatest_client: one-shot command-line client for the gatest_serve daemon.
//
// Three modes, all built on the shared retry helper (serve/client.h), so
// overload rejections (overloaded / quota-exceeded / journal-error) are
// retried with jittered exponential backoff honoring retry_after_ms:
//
//   --req JSON      send one raw request line, print the response line
//   --submit ...    build and send a submit from flags, print the job id
//   --wait ID       poll status until the job is terminal, print the state
//   --result ID     print the job's final test vectors, one per line
//
// Exit codes: 0 success; 1 request failed / job not done / daemon
// unreachable after retries; 2 bad flags.  Crash-recovery scripts use
// submit/wait/result to compare a restarted daemon's served bits against an
// uninterrupted gatest_atpg run.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/client.h"
#include "serve/protocol.h"
#include "telemetry/json.h"

using namespace gatest;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port N [options] (--req JSON | --submit | --wait ID | "
      "--result ID)\n"
      "\n"
      "  --host ADDR        daemon address (default 127.0.0.1)\n"
      "  --port N           daemon port (required)\n"
      "  --req JSON         send one raw request line, print the response\n"
      "  --submit           submit a job from the flags below, print its id\n"
      "    --profile NAME     benchmark profile (required with --submit)\n"
      "    --name S           optional job label\n"
      "    --seed N           config seed (default 1)\n"
      "    --max-evals N      evaluation budget (default 0 = unlimited)\n"
      "    --max-vectors N    vector budget (default 0 = unlimited)\n"
      "  --wait ID          poll until the job is terminal; print the state\n"
      "                     (exit 0 only for state done)\n"
      "    --timeout-s T      give up after T seconds (default 120)\n"
      "  --result ID        print the final test set, one vector per line\n"
      "  --retries N        backoff retry budget (default 8)\n"
      "  --quiet            suppress progress messages\n",
      argv0);
}

[[noreturn]] void flag_error(const char* flag, const char* expected,
                             const std::string& got) {
  std::fprintf(stderr, "gatest_client: %s expects %s, got '%s'\n", flag,
               expected, got.c_str());
  std::exit(2);
}

std::string arg_value(int argc, char** argv, int& i, const char* argv0) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "gatest_client: %s needs a value\n", argv[i]);
    usage(argv0);
    std::exit(2);
  }
  return argv[++i];
}

unsigned long parse_uint(const char* flag, const std::string& v,
                         const char* expected) {
  char* end = nullptr;
  const unsigned long n = std::strtoul(v.c_str(), &end, 10);
  if (v.empty() || *end != '\0' || v[0] == '-') flag_error(flag, expected, v);
  return n;
}

/// request_with_retry + parse; exits 1 on exhausted retries or bad JSON.
telemetry::JsonValue rpc(const std::string& host, unsigned short port,
                         const std::string& req, serve::Backoff& backoff) {
  std::string response, err;
  if (!serve::request_with_retry(host, port, req, response, backoff, err)) {
    std::fprintf(stderr, "gatest_client: request failed: %s\n", err.c_str());
    std::exit(1);
  }
  try {
    return telemetry::parse_json(response);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gatest_client: bad response '%s': %s\n",
                 response.c_str(), e.what());
    std::exit(1);
  }
}

bool is_ok(const telemetry::JsonValue& resp) {
  const telemetry::JsonValue* ok = resp.find("ok");
  return ok && ok->type == telemetry::JsonValue::Type::Bool && ok->boolean;
}

std::string error_message(const telemetry::JsonValue& resp) {
  const telemetry::JsonValue* err = resp.find("error");
  if (!err || !err->is_object()) return "unknown error";
  return err->string_or("code", "?") + ": " + err->string_or("message", "?");
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  unsigned short port = 0;
  enum class Mode { None, Req, Submit, Wait, Result } mode = Mode::None;
  std::string raw_req, profile, name;
  std::uint64_t job_id = 0, seed = 1, max_evals = 0, max_vectors = 0;
  double timeout_s = 120.0;
  unsigned retries = 8;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--host") {
      host = arg_value(argc, argv, i, argv[0]);
    } else if (a == "--port") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      const unsigned long p = parse_uint("--port", v, "a port number 1-65535");
      if (p < 1 || p > 65535) flag_error("--port", "a port number 1-65535", v);
      port = static_cast<unsigned short>(p);
    } else if (a == "--req") {
      mode = Mode::Req;
      raw_req = arg_value(argc, argv, i, argv[0]);
    } else if (a == "--submit") {
      mode = Mode::Submit;
    } else if (a == "--wait") {
      mode = Mode::Wait;
      job_id = parse_uint("--wait", arg_value(argc, argv, i, argv[0]),
                          "a job id");
    } else if (a == "--result") {
      mode = Mode::Result;
      job_id = parse_uint("--result", arg_value(argc, argv, i, argv[0]),
                          "a job id");
    } else if (a == "--profile") {
      profile = arg_value(argc, argv, i, argv[0]);
    } else if (a == "--name") {
      name = arg_value(argc, argv, i, argv[0]);
    } else if (a == "--seed") {
      seed = parse_uint("--seed", arg_value(argc, argv, i, argv[0]),
                        "a non-negative seed");
    } else if (a == "--max-evals") {
      max_evals = parse_uint("--max-evals", arg_value(argc, argv, i, argv[0]),
                             "a non-negative count");
    } else if (a == "--max-vectors") {
      max_vectors = parse_uint("--max-vectors",
                               arg_value(argc, argv, i, argv[0]),
                               "a non-negative count");
    } else if (a == "--timeout-s") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      char* end = nullptr;
      timeout_s = std::strtod(v.c_str(), &end);
      if (v.empty() || *end != '\0' || timeout_s <= 0.0)
        flag_error("--timeout-s", "a positive second count", v);
    } else if (a == "--retries") {
      retries = static_cast<unsigned>(parse_uint(
          "--retries", arg_value(argc, argv, i, argv[0]), "a retry count"));
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "gatest_client: unknown flag '%s'\n", a.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (port == 0 || mode == Mode::None) {
    std::fprintf(stderr, "gatest_client: --port and a mode are required\n");
    usage(argv[0]);
    return 2;
  }

  serve::BackoffPolicy policy;
  policy.max_attempts = retries;
  serve::Backoff backoff(policy, seed);

  switch (mode) {
    case Mode::Req: {
      std::string response, err;
      if (!serve::request_with_retry(host, port, raw_req, response, backoff,
                                     err)) {
        std::fprintf(stderr, "gatest_client: request failed: %s\n",
                     err.c_str());
        return 1;
      }
      std::printf("%s\n", response.c_str());
      unsigned hint = 0;
      return serve::retryable_error(response, hint) ? 1 : 0;
    }

    case Mode::Submit: {
      if (profile.empty()) {
        std::fprintf(stderr, "gatest_client: --submit requires --profile\n");
        return 2;
      }
      serve::JsonWriter w;
      w.begin_object().key("cmd").value("submit");
      if (!name.empty()) w.key("name").value(name);
      w.key("profile").value(profile);
      w.key("config").begin_object().key("seed").value(seed).end_object();
      if (max_evals > 0 || max_vectors > 0) {
        w.key("budget").begin_object();
        if (max_evals > 0) w.key("max_evals").value(max_evals);
        if (max_vectors > 0) w.key("max_vectors").value(max_vectors);
        w.end_object();
      }
      w.end_object();
      const telemetry::JsonValue resp = rpc(host, port, w.take(), backoff);
      if (!is_ok(resp)) {
        std::fprintf(stderr, "gatest_client: submit rejected: %s\n",
                     error_message(resp).c_str());
        return 1;
      }
      std::printf("%llu\n", static_cast<unsigned long long>(
                                resp.number_or("id", 0.0)));
      return 0;
    }

    case Mode::Wait: {
      serve::JsonWriter w;
      w.begin_object().key("cmd").value("status").key("id").value(job_id)
          .end_object();
      const std::string req = w.take();
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timeout_s));
      for (;;) {
        backoff.reset();
        const telemetry::JsonValue resp = rpc(host, port, req, backoff);
        if (!is_ok(resp)) {
          std::fprintf(stderr, "gatest_client: status failed: %s\n",
                       error_message(resp).c_str());
          return 1;
        }
        const telemetry::JsonValue* job = resp.find("job");
        const std::string state = job ? job->string_or("state", "") : "";
        if (state == "done" || state == "cancelled" || state == "failed") {
          std::printf("%s\n", state.c_str());
          return state == "done" ? 0 : 1;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
          std::fprintf(stderr,
                       "gatest_client: job %llu still '%s' after %.0fs\n",
                       static_cast<unsigned long long>(job_id), state.c_str(),
                       timeout_s);
          return 1;
        }
        if (!quiet)
          std::fprintf(stderr, "gatest_client: job %llu is %s...\n",
                       static_cast<unsigned long long>(job_id), state.c_str());
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }

    case Mode::Result: {
      serve::JsonWriter w;
      w.begin_object().key("cmd").value("result").key("id").value(job_id)
          .end_object();
      const telemetry::JsonValue resp = rpc(host, port, w.take(), backoff);
      if (!is_ok(resp)) {
        std::fprintf(stderr, "gatest_client: result failed: %s\n",
                     error_message(resp).c_str());
        return 1;
      }
      const telemetry::JsonValue* vectors = resp.find("vectors");
      if (!vectors) {
        std::fprintf(stderr, "gatest_client: response has no vectors\n");
        return 1;
      }
      for (const telemetry::JsonValue& v : vectors->array)
        std::printf("%s\n", v.str.c_str());
      return 0;
    }

    case Mode::None:
      break;
  }
  return 2;
}
