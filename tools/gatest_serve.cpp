// gatest_serve: ATPG-as-a-service daemon.
//
// Listens on a TCP port for newline-delimited JSON requests (submit /
// status / cancel / result / watch / metrics / shutdown — grammar in
// serve/protocol.h and DESIGN.md §5), runs submitted jobs on a fixed worker
// pool with checkpoint-based fair-share time slicing, and exits 0 on SIGTERM,
// SIGINT, or a shutdown command after cancelling in-flight work cleanly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "serve/server.h"
#include "telemetry/log.h"
#include "util/fault_inject.h"
#include "util/run_control.h"

using namespace gatest;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "\n"
      "  --host ADDR        bind address (default 127.0.0.1)\n"
      "  --port N           TCP port; 0 asks the OS for a free one "
      "(default 0)\n"
      "  --port-file FILE   write the bound port number to FILE once "
      "listening\n"
      "  --http-port N      also serve the HTTP observability plane\n"
      "                     (/metrics /healthz /readyz /jobs) on this port;\n"
      "                     0 asks the OS for a free one (off by default)\n"
      "  --http-port-file FILE\n"
      "                     write the bound HTTP port to FILE once listening\n"
      "  --workers N        worker threads running job slices (default 2)\n"
      "  --slice-ms N       fair-share time slice in milliseconds; 0 runs\n"
      "                     every job to completion uninterrupted "
      "(default 250)\n"
      "  --trace-out FILE   server-level JSONL trace (job_submit/job_start/\n"
      "                     slice_stop/job_done events)\n"
      "  --metrics-out FILE write a metrics snapshot as JSON on shutdown\n"
      "  --state-dir DIR    persistent job journal: every accepted job is\n"
      "                     recorded crash-atomically and recovered (resumed\n"
      "                     from its last checkpoint) on the next start\n"
      "  --max-queue N      reject submits with 'overloaded' once N jobs are\n"
      "                     queued; 0 = unbounded (default 0)\n"
      "  --max-jobs-per-client N\n"
      "                     per-connection cap on unfinished jobs; exceeding\n"
      "                     it rejects with 'quota-exceeded' (default 0 = "
      "off)\n"
      "  --idle-timeout-ms N\n"
      "                     drop connections idle longer than N ms "
      "(default 0 = never)\n"
      "  --retry-after-ms N backoff hint attached to overload rejections\n"
      "                     (default 500)\n"
      "  --fault-inject SPEC\n"
      "                     deterministic fault injection for robustness\n"
      "                     testing, e.g. journal_write:p=0.05 (see\n"
      "                     util/fault_inject.h for the grammar)\n"
      "  --fault-seed N     seed for --fault-inject streams (default 1)\n"
      "  --quiet            suppress informational stderr messages\n"
      "  --verbose          debug-level stderr messages\n",
      argv0);
}

[[noreturn]] void flag_error(const char* flag, const char* expected,
                             const std::string& got) {
  std::fprintf(stderr, "gatest_serve: %s expects %s, got '%s'\n", flag,
               expected, got.c_str());
  std::exit(2);
}

std::string arg_value(int argc, char** argv, int& i, const char* argv0) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "gatest_serve: %s needs a value\n", argv[i]);
    usage(argv0);
    std::exit(2);
  }
  return argv[++i];
}

unsigned long parse_uint(const char* flag, const std::string& v,
                         const char* expected) {
  char* end = nullptr;
  const unsigned long n = std::strtoul(v.c_str(), &end, 10);
  if (v.empty() || *end != '\0' || v[0] == '-') flag_error(flag, expected, v);
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerConfig cfg;
  std::string port_file, http_port_file, metrics_file;
  std::string fault_spec;
  std::uint64_t fault_seed = 1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--host") {
      cfg.host = arg_value(argc, argv, i, argv[0]);
    } else if (a == "--port") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      const unsigned long p = parse_uint("--port", v, "a port number 0-65535");
      if (p > 65535) flag_error("--port", "a port number 0-65535", v);
      cfg.port = static_cast<unsigned short>(p);
    } else if (a == "--port-file") {
      port_file = arg_value(argc, argv, i, argv[0]);
    } else if (a == "--http-port") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      const unsigned long p =
          parse_uint("--http-port", v, "a port number 0-65535");
      if (p > 65535) flag_error("--http-port", "a port number 0-65535", v);
      cfg.http_enabled = true;
      cfg.http_port = static_cast<unsigned short>(p);
    } else if (a == "--http-port-file") {
      http_port_file = arg_value(argc, argv, i, argv[0]);
    } else if (a == "--workers") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      const unsigned long n = parse_uint("--workers", v, "a count 1-64");
      if (n < 1 || n > 64) flag_error("--workers", "a count 1-64", v);
      cfg.serve.workers = static_cast<unsigned>(n);
    } else if (a == "--slice-ms") {
      const std::string v = arg_value(argc, argv, i, argv[0]);
      const unsigned long ms =
          parse_uint("--slice-ms", v, "a non-negative millisecond count");
      cfg.serve.slice_seconds = static_cast<double>(ms) / 1000.0;
    } else if (a == "--trace-out") {
      cfg.serve.trace_path = arg_value(argc, argv, i, argv[0]);
    } else if (a == "--metrics-out") {
      metrics_file = arg_value(argc, argv, i, argv[0]);
    } else if (a == "--state-dir") {
      cfg.serve.state_dir = arg_value(argc, argv, i, argv[0]);
    } else if (a == "--max-queue") {
      cfg.serve.max_queued_jobs = parse_uint(
          "--max-queue", arg_value(argc, argv, i, argv[0]),
          "a non-negative count");
    } else if (a == "--max-jobs-per-client") {
      cfg.serve.max_jobs_per_client = parse_uint(
          "--max-jobs-per-client", arg_value(argc, argv, i, argv[0]),
          "a non-negative count");
    } else if (a == "--idle-timeout-ms") {
      cfg.idle_timeout_seconds =
          static_cast<double>(parse_uint("--idle-timeout-ms",
                                         arg_value(argc, argv, i, argv[0]),
                                         "a non-negative millisecond count")) /
          1000.0;
    } else if (a == "--retry-after-ms") {
      cfg.serve.retry_after_ms = static_cast<unsigned>(
          parse_uint("--retry-after-ms", arg_value(argc, argv, i, argv[0]),
                     "a non-negative millisecond count"));
    } else if (a == "--fault-inject") {
      fault_spec = arg_value(argc, argv, i, argv[0]);
    } else if (a == "--fault-seed") {
      fault_seed = parse_uint("--fault-seed",
                              arg_value(argc, argv, i, argv[0]),
                              "a non-negative seed");
    } else if (a == "--quiet") {
      quiet = true;
      telemetry::global_logger().set_level(telemetry::LogLevel::Quiet);
    } else if (a == "--verbose") {
      telemetry::global_logger().set_level(telemetry::LogLevel::Debug);
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "gatest_serve: unknown flag '%s'\n", a.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  static FaultInjector injector;  // outlives every thread that consults it
  if (!fault_spec.empty()) {
    std::string ferr;
    if (!FaultInjector::parse(fault_spec, fault_seed, injector, ferr)) {
      std::fprintf(stderr, "gatest_serve: --fault-inject: %s\n", ferr.c_str());
      return 2;
    }
    FaultInjector::set_global(&injector);
    if (!quiet)
      std::fprintf(stderr, "gatest_serve: fault injection armed: %s\n",
                   fault_spec.c_str());
  }

  serve::Server server(cfg);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gatest_serve: %s\n", e.what());
    return 1;
  }

  if (!port_file.empty()) {
    std::ofstream pf(port_file, std::ios::trunc);
    pf << server.port() << "\n";
    if (!pf) {
      std::fprintf(stderr, "gatest_serve: cannot write port file '%s'\n",
                   port_file.c_str());
      return 1;
    }
  }
  if (!http_port_file.empty()) {
    std::ofstream pf(http_port_file, std::ios::trunc);
    pf << server.http_port() << "\n";
    if (!pf) {
      std::fprintf(stderr, "gatest_serve: cannot write port file '%s'\n",
                   http_port_file.c_str());
      return 1;
    }
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "gatest_serve: listening on %s:%u (%u workers, slice %.0f "
                 "ms)\n",
                 cfg.host.c_str(), server.port(), cfg.serve.workers,
                 cfg.serve.slice_seconds * 1000.0);
    if (cfg.http_enabled)
      std::fprintf(stderr, "gatest_serve: http observability on %s:%u\n",
                   cfg.host.c_str(), server.http_port());
  }

  install_signal_stop_handlers();
  server.run(&global_stop_token());

  if (!metrics_file.empty()) {
    std::ofstream mf(metrics_file, std::ios::trunc);
    mf << server.jobs().metrics_json() << "\n";
  }
  if (!quiet) std::fprintf(stderr, "gatest_serve: shut down cleanly\n");
  return 0;
}
