// A production-style two-pass ATPG flow, the deployment the paper's §V
// recommends: run the fast GA-based generator first to screen out most
// faults, then hand the survivors to the deterministic fault-oriented
// engine, which can also prove faults untestable (within its time-frame
// window) — something no simulation-based generator can do.
#include <cstdio>

#include "atpg/hitec_lite.h"
#include "circuitgen/circuitgen.h"
#include "fault/fault.h"
#include "gatest/test_generator.h"

using namespace gatest;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s386";
  const Circuit circuit = benchmark_circuit(name);
  FaultList faults(circuit);
  std::printf("two-pass ATPG on %s: %zu faults\n\n", name.c_str(),
              faults.size());

  // ---- pass 1: GATEST screens the easy and medium faults -------------------
  TestGenConfig ga_cfg;
  ga_cfg.seed = 7;
  GaTestGenerator ga(circuit, faults, ga_cfg);
  const TestGenResult pass1 = ga.run();
  std::printf("pass 1 (GATEST):      %5zu detected, %4zu vectors, %.2fs\n",
              pass1.faults_detected, pass1.test_set.size(), pass1.seconds);

  // ---- pass 2: deterministic engine targets the survivors ------------------
  // The fault list carries its state into the second pass: detected faults
  // are skipped, and the deterministic engine appends to the test set.
  HitecLiteConfig det_cfg;
  det_cfg.backtrack_limit = 200;
  const HitecLiteResult pass2 = run_hitec_lite(circuit, faults, det_cfg);
  std::printf("pass 2 (PODEM):       %5zu targeted, %zu new tests, "
              "%zu aborted, %zu untestable-in-window, %.2fs\n",
              pass2.targeted, pass2.test_found, pass2.aborted,
              pass2.no_test_in_window, pass2.gen.seconds);

  // ---- combined summary -----------------------------------------------------
  const std::size_t detected = faults.num_detected();
  const std::size_t untestable = faults.num_untestable();
  const std::size_t remaining = faults.num_undetected();
  std::printf("\ncombined: %zu/%zu detected (%.1f%%), %zu untestable in a "
              "%u-frame window, %zu unresolved\n",
              detected, faults.size(),
              100.0 * static_cast<double>(detected) /
                  static_cast<double>(faults.size()),
              untestable, 4 * std::max(1u, circuit.sequential_depth()),
              remaining);
  std::printf("total test length: %zu (GA) + %zu (deterministic)\n",
              pass1.test_set.size(), pass2.gen.test_set.size());
  return 0;
}
