// GA parameter tuning on your own circuit: sweep the knobs the paper
// studies (selection scheme, crossover operator, generation gap, fault
// sampling) on one circuit and print a ranked summary.  Useful to pick a
// configuration before a long run on a large design.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "circuitgen/circuitgen.h"
#include "experiments/harness.h"
#include "fault/fault.h"
#include "gatest/test_generator.h"
#include "util/table.h"

using namespace gatest;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s298";
  const unsigned runs = argc > 2 ? std::stoul(argv[2]) : 3;

  struct Entry {
    std::string label;
    double det, vec, sec;
  };
  std::vector<Entry> entries;

  auto sweep = [&](const std::string& label, const TestGenConfig& cfg) {
    const RunSummary s = run_gatest_repeated(name, cfg, runs, 12345);
    entries.push_back(
        {label, s.detected.mean(), s.vectors.mean(), s.seconds.mean()});
    std::printf(".");
    std::fflush(stdout);
  };

  std::printf("sweeping GA configurations on %s (%u runs each) ", name.c_str(),
              runs);

  const TestGenConfig base = paper_config_for(name);
  sweep("paper default (TN/uniform)", base);

  for (auto [label, sel] : {std::pair<const char*, SelectionScheme>{
                                "roulette", SelectionScheme::RouletteWheel},
                            {"stoch-universal",
                             SelectionScheme::StochasticUniversal},
                            {"tournament-repl",
                             SelectionScheme::TournamentWithReplacement}}) {
    TestGenConfig cfg = base;
    cfg.selection = sel;
    sweep(std::string("selection: ") + label, cfg);
  }
  for (auto [label, xov] : {std::pair<const char*, CrossoverScheme>{
                                "1-point", CrossoverScheme::OnePoint},
                            {"2-point", CrossoverScheme::TwoPoint}}) {
    TestGenConfig cfg = base;
    cfg.crossover = xov;
    sweep(std::string("crossover: ") + label, cfg);
  }
  {
    TestGenConfig cfg = base;
    cfg.generation_gap = 0.75;
    sweep("generation gap 3/4", cfg);
  }
  {
    TestGenConfig cfg = base;
    cfg.fault_sample_size = 100;
    sweep("fault sample 100", cfg);
  }
  {
    TestGenConfig cfg = base;
    cfg.sequence_coding = Coding::NonBinary;
    sweep("nonbinary coding", cfg);
  }

  std::printf(" done\n\n");
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.det > b.det; });

  AsciiTable table({"Rank", "Configuration", "Det", "Vec", "Time(s)"});
  for (std::size_t i = 0; i < entries.size(); ++i)
    table.add_row({strprintf("%zu", i + 1), entries[i].label,
                   strprintf("%.1f", entries[i].det),
                   strprintf("%.0f", entries[i].vec),
                   strprintf("%.2f", entries[i].sec)});
  table.print(std::cout);
  return 0;
}
