// Quickstart: generate tests for a benchmark circuit with GATEST and report
// coverage — the five-minute tour of the public API.
//
//   1. get a circuit (embedded s27 or a profile-matched synthetic ISCAS89),
//   2. build the collapsed stuck-at fault list,
//   3. run the GA-based test generator,
//   4. replay the test set through the fault simulator to verify it.
#include <cstdio>

#include "circuitgen/circuitgen.h"
#include "fault/fault.h"
#include "fsim/fault_sim.h"
#include "gatest/test_generator.h"

using namespace gatest;

int main() {
  // 1. Circuit: the genuine ISCAS89 s27.
  const Circuit circuit = benchmark_circuit("s27");
  std::printf("circuit %s: %zu PIs, %zu POs, %zu flip-flops, %zu gates, "
              "sequential depth %u\n",
              circuit.name().c_str(), circuit.num_inputs(),
              circuit.num_outputs(), circuit.num_dffs(),
              circuit.num_logic_gates(), circuit.sequential_depth());

  // 2. Collapsed single-stuck-at fault universe.
  FaultList faults(circuit);
  std::printf("fault list: %zu collapsed faults\n", faults.size());

  // 3. GATEST with the paper's default configuration (tournament selection
  //    without replacement, uniform crossover, binary coding).
  TestGenConfig config;
  config.seed = 1994;
  GaTestGenerator generator(circuit, faults, config);
  const TestGenResult result = generator.run();

  std::printf("\nGATEST: detected %zu/%zu faults (%.1f%% coverage) with %zu "
              "vectors in %.2fs\n",
              result.faults_detected, result.faults_total,
              100.0 * result.fault_coverage, result.test_set.size(),
              result.seconds);
  std::printf("        %zu fitness evaluations; %zu faults found by "
              "individual vectors, %zu by sequences\n",
              result.fitness_evaluations, result.detected_by_vectors,
              result.detected_by_sequences);

  // 4. Verify by replay: a fresh fault simulator must reproduce the count.
  FaultList replay(circuit);
  SequentialFaultSimulator sim(circuit, replay);
  for (std::size_t i = 0; i < result.test_set.size(); ++i)
    sim.apply_vector(result.test_set[i], static_cast<std::int64_t>(i));
  std::printf("\nreplay check: %zu detected — %s\n", replay.num_detected(),
              replay.num_detected() == result.faults_detected ? "OK"
                                                              : "MISMATCH");

  // Print the first few vectors of the test set.
  std::printf("\ntest set (first 5 of %zu):\n", result.test_set.size());
  for (std::size_t i = 0; i < result.test_set.size() && i < 5; ++i)
    std::printf("  t=%zu  %s\n", i, logic_string(result.test_set[i]).c_str());
  return 0;
}
