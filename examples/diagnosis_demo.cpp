// Fault diagnosis demo: generate a test set with GATEST, build a
// full-response fault dictionary, "manufacture" a defective part by
// injecting a random fault, run the test program on it, and diagnose the
// defect from the tester log.
#include <cstdio>

#include "circuitgen/circuitgen.h"
#include "diagnosis/diagnosis.h"
#include "fault/fault.h"
#include "gatest/test_generator.h"
#include "util/rng.h"

using namespace gatest;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s298";
  const Circuit circuit = benchmark_circuit(name);

  // 1. Test program: GATEST with the paper's defaults.
  FaultList faults(circuit);
  TestGenConfig config;
  config.seed = 2026;
  GaTestGenerator generator(circuit, faults, config);
  const TestGenResult result = generator.run();
  std::printf("test program: %zu vectors, %zu/%zu faults covered\n",
              result.test_set.size(), result.faults_detected,
              result.faults_total);

  // 2. Offline dictionary over the full collapsed fault list.
  FaultList universe(circuit);
  FaultDictionary dict(circuit, universe.faults(), result.test_set);
  std::printf("dictionary: %zu faults, %zu distinguishable classes, "
              "diagnostic resolution %.1f%%\n\n",
              dict.num_faults(), dict.num_distinguishable_classes(),
              100.0 * dict.diagnostic_resolution());

  // 3. Defective parts: inject covered faults and diagnose from failures.
  Rng rng(7);
  int trials = 0, top1 = 0, top5 = 0;
  while (trials < 10) {
    const auto defect =
        static_cast<std::uint32_t>(rng.below(dict.num_faults()));
    if (dict.signature(defect).empty()) continue;  // escapes the test set
    ++trials;
    const Signature observed = dict.observe(dict.fault(defect));
    const auto candidates = dict.diagnose(observed, 5);

    const bool hit1 = !candidates.empty() &&
                      (candidates[0].fault_index == defect ||
                       dict.signature(candidates[0].fault_index) == observed);
    bool hit5 = false;
    for (const auto& cand : candidates)
      if (cand.fault_index == defect) hit5 = true;
    top1 += hit1;
    top5 += hit5 || hit1;

    std::printf("defect %-24s -> top candidate %-24s (score %.2f) %s\n",
                fault_name(circuit, dict.fault(defect)).c_str(),
                candidates.empty()
                    ? "(none)"
                    : fault_name(circuit,
                                 dict.fault(candidates[0].fault_index))
                          .c_str(),
                candidates.empty() ? 0.0 : candidates[0].score,
                hit1 ? "[exact/equivalent]" : "");
  }
  std::printf("\ndiagnosis accuracy over %d defective parts: top-1 %d/%d, "
              "top-5 %d/%d\n",
              trials, top1, trials, top5, trials);
  return 0;
}
