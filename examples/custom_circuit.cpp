// Bring your own netlist: parse an ISCAS89-style .bench description (from a
// file or an embedded string), generate tests for it, and write the circuit
// back out.  This is the path a downstream user with real netlists takes.
#include <cstdio>
#include <iostream>

#include "fault/fault.h"
#include "gatest/test_generator.h"
#include "netlist/bench_io.h"

using namespace gatest;

// A small traffic-light-style controller: 2 inputs, a 2-bit state register
// with reset-like behavior, 2 outputs.
static const char* kController = R"(
# 2-bit sequential controller
INPUT(go)
INPUT(halt)
OUTPUT(red)
OUTPUT(green)

s0 = DFF(n0)
s1 = DFF(n1)

nhalt = NOT(halt)
adv   = AND(go, nhalt)
t0    = XOR(s0, adv)
n0    = AND(t0, nhalt)
carry = AND(s0, adv)
t1    = XOR(s1, carry)
n1    = AND(t1, nhalt)

green = AND(s1, s0)
red   = NOR(s1, s0)
)";

int main(int argc, char** argv) {
  // Load from a file if given, else use the embedded controller.
  Circuit circuit = argc > 1 ? load_bench_file(argv[1])
                             : parse_bench_string(kController, "controller");

  std::printf("loaded %s: %zu PIs, %zu POs, %zu flip-flops, %zu gates, "
              "depth %u\n\n",
              circuit.name().c_str(), circuit.num_inputs(),
              circuit.num_outputs(), circuit.num_dffs(),
              circuit.num_logic_gates(), circuit.sequential_depth());

  FaultList faults(circuit);
  TestGenConfig config;
  config.seed = 42;
  GaTestGenerator generator(circuit, faults, config);
  const TestGenResult result = generator.run();

  std::printf("GATEST: %zu/%zu faults detected (%.1f%%), %zu vectors\n\n",
              result.faults_detected, result.faults_total,
              100.0 * result.fault_coverage, result.test_set.size());

  // Which faults escaped?  (For a real flow these go to a deterministic
  // engine — see examples/atpg_flow.)
  std::printf("undetected faults:\n");
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (faults.status(i) == FaultStatus::Undetected)
      std::printf("  %s\n", fault_name(circuit, faults.fault(i)).c_str());

  std::printf("\nround-trip .bench output:\n");
  write_bench(circuit, std::cout);
  return 0;
}
