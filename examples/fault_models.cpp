// Beyond stuck-at: the paper's conclusion notes that "the GA-based test
// generator is not limited to the single stuck-at fault model".  This
// example runs GATEST twice on the same circuit — once against the
// collapsed stuck-at universe and once against the gross-delay transition
// universe — and compares coverage and test lengths.  The generator code is
// untouched; only the fault list changes.
#include <cstdio>

#include "circuitgen/circuitgen.h"
#include "fault/fault.h"
#include "fsim/fault_sim.h"
#include "gatest/test_generator.h"

using namespace gatest;

namespace {

void run_model(const Circuit& circuit, FaultList& faults, const char* label) {
  TestGenConfig config;
  config.seed = 7;
  GaTestGenerator generator(circuit, faults, config);
  const TestGenResult result = generator.run();
  std::printf("%-12s %5zu faults   %5zu detected (%5.1f%%)   %4zu vectors   "
              "%.2fs\n",
              label, result.faults_total, result.faults_detected,
              100.0 * result.fault_coverage, result.test_set.size(),
              result.seconds);

  // A transition test set is also a (partial) stuck-at test set: replay it
  // against the other model to see the overlap.
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s298";
  const Circuit circuit = benchmark_circuit(name);
  std::printf("fault-model comparison on %s (%zu gates, %zu flip-flops)\n\n",
              name.c_str(), circuit.num_logic_gates(), circuit.num_dffs());

  FaultList stuck(circuit);
  run_model(circuit, stuck, "stuck-at");

  FaultList transition(circuit, enumerate_transition_faults(circuit));
  run_model(circuit, transition, "transition");

  // Cross-replay: how much of each universe does the *other* model's test
  // set cover?  (Transition tests exercise launch/capture pairs, so they
  // tend to be good stuck-at tests too; the reverse is weaker.)
  std::printf("\ncross-replay:\n");
  {
    FaultList f2(circuit, enumerate_transition_faults(circuit));
    SequentialFaultSimulator sim(circuit, f2);
    // Rebuild the stuck-at test set.
    FaultList s2(circuit);
    TestGenConfig config;
    config.seed = 7;
    GaTestGenerator gen(circuit, s2, config);
    const TestGenResult stuck_res = gen.run();
    for (std::size_t i = 0; i < stuck_res.test_set.size(); ++i)
      sim.apply_vector(stuck_res.test_set[i], static_cast<std::int64_t>(i));
    std::printf("  stuck-at test set on transition faults: %zu/%zu (%.1f%%)\n",
                f2.num_detected(), f2.size(), 100.0 * f2.coverage());
  }
  return 0;
}
